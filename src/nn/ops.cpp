#include "nn/ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/thread_pool.h"
#include "nn/fastmath.h"
#include "nn/op_kernels.h"

namespace tpuperf::nn {
namespace {

std::atomic<bool> g_fused_ops{true};

void CheckSame(const Matrix& a, const Matrix& b, const char* op) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.ShapeString() + " vs " + b.ShapeString());
  }
}

// Shorthand: elementwise unary op with dy/dx computable from x and y.
// Fused mode reads x and y from the tape nodes themselves in the backward
// (the parent's value and self.value stay alive on the tape), so no matrix
// copies are captured; seed mode keeps the pre-fusion captured copies. On
// grad-disabled tapes neither closure is built — inference pays for the
// forward values only.
template <typename Fwd, typename Bwd>
Tensor Unary(Tape& tape, Tensor x, Fwd fwd, Bwd bwd) {
  const Matrix& xv = x.value();
  Matrix y = tape.NewMatrixUninit(xv.rows(), xv.cols());
  for (size_t i = 0; i < xv.size(); ++i) y.data()[i] = fwd(xv.data()[i]);
  TapeNode* xn = x.node();
  if (!tape.grad_enabled()) return tape.NewNode(std::move(y), {xn}, nullptr);
  if (FusedOpsEnabled()) {
    return tape.NewNode(std::move(y), {xn}, [xn, bwd](TapeNode& self) {
      const float* __restrict xd = xn->value.data();
      const float* __restrict yd = self.value.data();
      for (size_t i = 0; i < self.grad.size(); ++i) {
        xn->grad.data()[i] += self.grad.data()[i] * bwd(xd[i], yd[i]);
      }
    });
  }
  Matrix yv = y;  // captured copy for backward (seed behavior)
  return tape.NewNode(
      std::move(y), {xn},
      [xn, xv_copy = xv, yv = std::move(yv), bwd](TapeNode& self) {
        for (size_t i = 0; i < self.grad.size(); ++i) {
          xn->grad.data()[i] +=
              self.grad.data()[i] * bwd(xv_copy.data()[i], yv.data()[i]);
        }
      });
}

}  // namespace

bool FusedOpsEnabled() noexcept {
  return g_fused_ops.load(std::memory_order_relaxed);
}

void SetFusedOps(bool enabled) noexcept {
  g_fused_ops.store(enabled, std::memory_order_relaxed);
}

Tensor MatMulOp(Tape& tape, Tensor a, Tensor b) {
  Matrix y = tape.NewMatrixUninit(a.rows(), b.cols());
  MatMulInto(y, a.value(), b.value());
  TapeNode* an = a.node();
  TapeNode* bn = b.node();
  if (!tape.grad_enabled()) return tape.NewNode(std::move(y), {an, bn}, nullptr);
  const bool fused = FusedOpsEnabled();
  return tape.NewNode(std::move(y), {an, bn}, [an, bn, fused](TapeNode& self) {
    // The accumulate entry points (dispatched through the selected GEMM
    // backend, nn/gemm_backend.h) produce bit-identical grads to the
    // temp+add seed pair on the built-in backend; they just skip the
    // temporary and the extra add pass. External backends agree within
    // nn::kGemmParityRtol.
    if (an->requires_grad) {
      if (fused) {
        MatMulTransposeBAccum(an->grad, self.grad, bn->value);
      } else {
        AccumulateInto(an->grad, MatMulTransposeB(self.grad, bn->value));
      }
    }
    if (bn->requires_grad) {
      if (fused) {
        MatMulTransposeAAccum(bn->grad, an->value, self.grad);
      } else {
        AccumulateInto(bn->grad, MatMulTransposeA(an->value, self.grad));
      }
    }
  });
}

Tensor MatMulConstA(Tape& tape, const Matrix& a, Tensor x) {
  // The constant operand here is an adjacency operator — sparse, so the
  // zero-skip kernel beats the dense tiled one (the MatMulSparseA entry
  // point runs the built-in kernel on every GEMM backend; its backward
  // below hits the backends' mostly-zero fallback the same way).
  Matrix y = tape.NewMatrixUninit(a.rows(), x.cols());
  MatMulSparseAInto(y, a, x.value());
  TapeNode* xn = x.node();
  if (!tape.grad_enabled()) return tape.NewNode(std::move(y), {xn}, nullptr);
  const bool fused = FusedOpsEnabled();
  return tape.NewNode(std::move(y), {xn}, [xn, a, fused](TapeNode& self) {
    if (fused) {
      MatMulTransposeAAccum(xn->grad, a, self.grad);
    } else {
      AccumulateInto(xn->grad, MatMulTransposeA(a, self.grad));
    }
  });
}

Tensor AddOp(Tape& tape, Tensor a, Tensor b) {
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  CheckSame(av, bv, "AddOp");
  Matrix y = tape.NewMatrixUninit(av.rows(), av.cols());
  for (size_t i = 0; i < av.size(); ++i) {
    y.data()[i] = av.data()[i] + bv.data()[i];
  }
  TapeNode* an = a.node();
  TapeNode* bn = b.node();
  return tape.NewNode(std::move(y), {an, bn}, [an, bn](TapeNode& self) {
    if (an->requires_grad) AccumulateInto(an->grad, self.grad);
    if (bn->requires_grad) AccumulateInto(bn->grad, self.grad);
  });
}

Tensor SubOp(Tape& tape, Tensor a, Tensor b) {
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  CheckSame(av, bv, "SubOp");
  Matrix y = tape.NewMatrixUninit(av.rows(), av.cols());
  for (size_t i = 0; i < av.size(); ++i) {
    y.data()[i] = av.data()[i] - bv.data()[i];
  }
  TapeNode* an = a.node();
  TapeNode* bn = b.node();
  return tape.NewNode(std::move(y), {an, bn}, [an, bn](TapeNode& self) {
    if (an->requires_grad) AccumulateInto(an->grad, self.grad);
    if (bn->requires_grad) AccumulateScaled(bn->grad, self.grad, -1.0f);
  });
}

Tensor MulOp(Tape& tape, Tensor a, Tensor b) {
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  CheckSame(av, bv, "MulOp");
  Matrix y = tape.NewMatrixUninit(av.rows(), av.cols());
  for (size_t i = 0; i < av.size(); ++i) {
    y.data()[i] = av.data()[i] * bv.data()[i];
  }
  TapeNode* an = a.node();
  TapeNode* bn = b.node();
  const bool fused = FusedOpsEnabled();
  return tape.NewNode(std::move(y), {an, bn}, [an, bn, fused](TapeNode& self) {
    if (fused) {
      // Read the operand values from the parent nodes; no Hadamard temps.
      const float* __restrict g = self.grad.data();
      if (an->requires_grad) {
        const float* __restrict bd = bn->value.data();
        for (size_t i = 0; i < self.grad.size(); ++i) {
          an->grad.data()[i] += g[i] * bd[i];
        }
      }
      if (bn->requires_grad) {
        const float* __restrict ad = an->value.data();
        for (size_t i = 0; i < self.grad.size(); ++i) {
          bn->grad.data()[i] += g[i] * ad[i];
        }
      }
      return;
    }
    if (an->requires_grad) {
      AccumulateInto(an->grad, Hadamard(self.grad, bn->value));
    }
    if (bn->requires_grad) {
      AccumulateInto(bn->grad, Hadamard(self.grad, an->value));
    }
  });
}

Tensor ScaleOp(Tape& tape, Tensor a, float s) {
  const Matrix& av = a.value();
  Matrix y = tape.NewMatrixUninit(av.rows(), av.cols());
  for (size_t i = 0; i < av.size(); ++i) y.data()[i] = av.data()[i] * s;
  TapeNode* an = a.node();
  return tape.NewNode(std::move(y), {an}, [an, s](TapeNode& self) {
    AccumulateScaled(an->grad, self.grad, s);
  });
}

Tensor AddScalarOp(Tape& tape, Tensor a, float s) {
  const Matrix& av = a.value();
  Matrix y = tape.NewMatrixUninit(av.rows(), av.cols());
  for (size_t i = 0; i < av.size(); ++i) y.data()[i] = av.data()[i] + s;
  TapeNode* an = a.node();
  return tape.NewNode(std::move(y), {an}, [an](TapeNode& self) {
    AccumulateInto(an->grad, self.grad);
  });
}

Tensor AddRowBroadcastOp(Tape& tape, Tensor x, Tensor bias) {
  const Matrix& xv = x.value();
  const Matrix& bv = bias.value();
  if (bv.rows() != 1 || bv.cols() != xv.cols()) {
    throw std::invalid_argument("AddRowBroadcastOp: bias must be [1, cols]");
  }
  Matrix y = tape.NewMatrixUninit(xv.rows(), xv.cols());
  for (int i = 0; i < xv.rows(); ++i) {
    for (int j = 0; j < xv.cols(); ++j) y.at(i, j) = xv.at(i, j) + bv.at(0, j);
  }
  TapeNode* xn = x.node();
  TapeNode* bn = bias.node();
  const bool fused = FusedOpsEnabled();
  return tape.NewNode(std::move(y), {xn, bn}, [xn, bn, fused](TapeNode& self) {
    if (xn->requires_grad) AccumulateInto(xn->grad, self.grad);
    if (bn->requires_grad) {
      if (fused) {
        // Column sums accumulated straight into the bias grad (same
        // ascending-row order as ColSum; no [1, c] temporary).
        for (int i = 0; i < self.grad.rows(); ++i) {
          for (int j = 0; j < self.grad.cols(); ++j) {
            bn->grad.at(0, j) += self.grad.at(i, j);
          }
        }
      } else {
        AccumulateInto(bn->grad, ColSum(self.grad));
      }
    }
  });
}

Tensor ReluOp(Tape& tape, Tensor x) {
  return Unary(
      tape, x, [](float v) { return v > 0 ? v : 0.0f; },
      [](float v, float) { return v > 0 ? 1.0f : 0.0f; });
}

Tensor LeakyReluOp(Tape& tape, Tensor x, float alpha) {
  return Unary(
      tape, x, [alpha](float v) { return v > 0 ? v : alpha * v; },
      [alpha](float v, float) { return v > 0 ? 1.0f : alpha; });
}

Tensor TanhOp(Tape& tape, Tensor x) {
  return Unary(
      tape, x, [](float v) { return FastTanh(v); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor SigmoidOp(Tape& tape, Tensor x) {
  return Unary(
      tape, x, [](float v) { return FastSigmoid(v); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor ExpOp(Tape& tape, Tensor x) {
  return Unary(
      tape, x, [](float v) { return std::exp(v); },
      [](float, float y) { return y; });
}

Tensor LogOp(Tape& tape, Tensor x, float eps) {
  return Unary(
      tape, x, [eps](float v) { return std::log(v + eps); },
      [eps](float v, float) { return 1.0f / (v + eps); });
}

Tensor DropoutOp(Tape& tape, Tensor x, float rate, std::mt19937_64& rng) {
  if (rate <= 0.0f) return x;
  if (rate >= 1.0f) throw std::invalid_argument("DropoutOp: rate must be < 1");
  const Matrix& xv = x.value();
  Matrix mask = tape.NewMatrixUninit(xv.rows(), xv.cols());
  std::bernoulli_distribution keep(1.0 - rate);
  const float scale = 1.0f / (1.0f - rate);
  for (float& m : mask.flat()) m = keep(rng) ? scale : 0.0f;
  Matrix y = tape.NewMatrixUninit(xv.rows(), xv.cols());
  for (size_t i = 0; i < xv.size(); ++i) {
    y.data()[i] = xv.data()[i] * mask.data()[i];
  }
  TapeNode* xn = x.node();
  if (tape.grad_enabled() && FusedOpsEnabled()) {
    // Stash the mask on the tape (arena-recycled) instead of in the closure.
    TapeNode* mask_node = tape.Leaf(std::move(mask)).node();
    return tape.NewNode(std::move(y), {xn}, [xn, mask_node](TapeNode& self) {
      const float* __restrict m = mask_node->value.data();
      for (size_t i = 0; i < self.grad.size(); ++i) {
        xn->grad.data()[i] += self.grad.data()[i] * m[i];
      }
    });
  }
  return tape.NewNode(std::move(y), {xn},
                      [xn, mask = std::move(mask)](TapeNode& self) {
                        AccumulateInto(xn->grad, Hadamard(self.grad, mask));
                      });
}

namespace {

void RowL2NormalizeBackward(const Matrix& yv,
                            const std::vector<float>& inv_norms, TapeNode* xn,
                            TapeNode& self) {
  // d/dx (x/|x|) = (G - y (y . G)) / |x|.
  for (int i = 0; i < self.grad.rows(); ++i) {
    double dot = 0;
    for (int j = 0; j < self.grad.cols(); ++j) {
      dot += static_cast<double>(self.grad.at(i, j)) * yv.at(i, j);
    }
    const float inv = inv_norms[static_cast<size_t>(i)];
    for (int j = 0; j < self.grad.cols(); ++j) {
      xn->grad.at(i, j) +=
          (self.grad.at(i, j) - static_cast<float>(dot) * yv.at(i, j)) * inv;
    }
  }
}

}  // namespace

Tensor RowL2NormalizeOp(Tape& tape, Tensor x, float eps) {
  const Matrix& xv = x.value();
  Matrix y = tape.NewMatrixUninit(xv.rows(), xv.cols());
  TapeNode* xn = x.node();
  if (!tape.grad_enabled()) {
    RowL2NormalizeForward(y, xv, eps, nullptr);
    return tape.NewNode(std::move(y), {xn}, nullptr);
  }
  std::vector<float> inv_norms(static_cast<size_t>(xv.rows()));
  RowL2NormalizeForward(y, xv, eps, inv_norms.data());
  if (FusedOpsEnabled()) {
    // y is read back from self.value in the backward; only the per-row
    // norms are captured.
    return tape.NewNode(std::move(y), {xn},
                        [xn, inv_norms = std::move(inv_norms)](TapeNode& self) {
                          RowL2NormalizeBackward(self.value, inv_norms, xn,
                                                 self);
                        });
  }
  Matrix yv = y;
  return tape.NewNode(
      std::move(y), {xn},
      [xn, yv = std::move(yv), inv_norms = std::move(inv_norms)](
          TapeNode& self) { RowL2NormalizeBackward(yv, inv_norms, xn, self); });
}

namespace {

void LayerNormBackward(const Matrix& xhat, const std::vector<float>& inv_std,
                       TapeNode* xn, TapeNode* gn, TapeNode* bn,
                       TapeNode& self) {
  const int n = self.grad.rows(), c = self.grad.cols();
  if (gn->requires_grad || bn->requires_grad) {
    for (int j = 0; j < c; ++j) {
      float dg = 0, db = 0;
      for (int i = 0; i < n; ++i) {
        dg += self.grad.at(i, j) * xhat.at(i, j);
        db += self.grad.at(i, j);
      }
      if (gn->requires_grad) gn->grad.at(0, j) += dg;
      if (bn->requires_grad) bn->grad.at(0, j) += db;
    }
  }
  if (xn->requires_grad) {
    for (int i = 0; i < n; ++i) {
      // dxhat = G * gamma; dx = istd*(dxhat - mean(dxhat)
      //                               - xhat*mean(dxhat*xhat)).
      double mean_dxhat = 0, mean_dxhat_xhat = 0;
      for (int j = 0; j < c; ++j) {
        const double dxh =
            static_cast<double>(self.grad.at(i, j)) * gn->value.at(0, j);
        mean_dxhat += dxh;
        mean_dxhat_xhat += dxh * xhat.at(i, j);
      }
      mean_dxhat /= c;
      mean_dxhat_xhat /= c;
      const float istd = inv_std[static_cast<size_t>(i)];
      for (int j = 0; j < c; ++j) {
        const double dxh =
            static_cast<double>(self.grad.at(i, j)) * gn->value.at(0, j);
        xn->grad.at(i, j) += static_cast<float>(
            istd * (dxh - mean_dxhat - xhat.at(i, j) * mean_dxhat_xhat));
      }
    }
  }
}

}  // namespace

Tensor LayerNormRowsOp(Tape& tape, Tensor x, Tensor gamma, Tensor beta,
                       float eps) {
  const Matrix& xv = x.value();
  const int n = xv.rows(), c = xv.cols();
  const Matrix& gv = gamma.value();
  const Matrix& bv = beta.value();
  Matrix y = tape.NewMatrixUninit(n, c);
  TapeNode* xn = x.node();
  TapeNode* gn = gamma.node();
  TapeNode* bn = beta.node();
  if (!tape.grad_enabled()) {
    // Backward state (xhat, inv_std) is skipped for inference.
    LayerNormRowsForward(y, xv, gv, bv, eps, nullptr, nullptr);
    return tape.NewNode(std::move(y), {xn, gn, bn}, nullptr);
  }
  Matrix xhat = tape.NewMatrixUninit(n, c);
  std::vector<float> inv_std(static_cast<size_t>(n));
  LayerNormRowsForward(y, xv, gv, bv, eps, &xhat, inv_std.data());
  if (FusedOpsEnabled()) {
    // xhat lives on the tape (arena-recycled stash leaf), not in the closure.
    TapeNode* xhat_node = tape.Leaf(std::move(xhat)).node();
    return tape.NewNode(
        std::move(y), {xn, gn, bn},
        [xn, gn, bn, xhat_node, inv_std = std::move(inv_std)](TapeNode& self) {
          LayerNormBackward(xhat_node->value, inv_std, xn, gn, bn, self);
        });
  }
  return tape.NewNode(
      std::move(y), {xn, gn, bn},
      [xn, gn, bn, xhat = std::move(xhat), inv_std = std::move(inv_std)](
          TapeNode& self) {
        LayerNormBackward(xhat, inv_std, xn, gn, bn, self);
      });
}

namespace {

void SoftmaxBackward(const Matrix& yv, TapeNode* xn, TapeNode& self) {
  // dx = y * (G - sum_j(G_j y_j)) row-wise.
  for (int i = 0; i < self.grad.rows(); ++i) {
    double dot = 0;
    for (int j = 0; j < self.grad.cols(); ++j) {
      dot += static_cast<double>(self.grad.at(i, j)) * yv.at(i, j);
    }
    for (int j = 0; j < self.grad.cols(); ++j) {
      xn->grad.at(i, j) +=
          yv.at(i, j) * (self.grad.at(i, j) - static_cast<float>(dot));
    }
  }
}

Tensor SoftmaxImpl(Tape& tape, Tensor x, const Matrix* mask) {
  const Matrix& xv = x.value();
  const int n = xv.rows(), c = xv.cols();
  Matrix y = tape.NewMatrixUninit(n, c);
  for (int i = 0; i < n; ++i) {
    float max_v = -std::numeric_limits<float>::infinity();
    for (int j = 0; j < c; ++j) {
      if (mask != nullptr && mask->at(i, j) == 0.0f) continue;
      max_v = std::max(max_v, xv.at(i, j));
    }
    double denom = 0;
    for (int j = 0; j < c; ++j) {
      if (mask != nullptr && mask->at(i, j) == 0.0f) {
        y.at(i, j) = 0.0f;
        continue;
      }
      const float e = std::exp(xv.at(i, j) - max_v);
      y.at(i, j) = e;
      denom += e;
    }
    if (denom > 0) {
      const float inv = 1.0f / static_cast<float>(denom);
      for (int j = 0; j < c; ++j) y.at(i, j) *= inv;
    }
  }
  TapeNode* xn = x.node();
  if (!tape.grad_enabled()) return tape.NewNode(std::move(y), {xn}, nullptr);
  if (FusedOpsEnabled()) {
    return tape.NewNode(std::move(y), {xn}, [xn](TapeNode& self) {
      SoftmaxBackward(self.value, xn, self);
    });
  }
  Matrix yv = y;
  return tape.NewNode(std::move(y), {xn},
                      [xn, yv = std::move(yv)](TapeNode& self) {
                        SoftmaxBackward(yv, xn, self);
                      });
}

}  // namespace

Tensor SoftmaxRowsOp(Tape& tape, Tensor x) { return SoftmaxImpl(tape, x, nullptr); }

Tensor MaskedSoftmaxRowsOp(Tape& tape, Tensor x, const Matrix& mask) {
  if (!mask.same_shape(x.value())) {
    throw std::invalid_argument("MaskedSoftmaxRowsOp: mask shape mismatch");
  }
  return SoftmaxImpl(tape, x, &mask);
}

Tensor ConcatColsOp(Tape& tape, std::span<const Tensor> parts) {
  if (parts.empty()) throw std::invalid_argument("ConcatColsOp: empty");
  const int n = parts.front().rows();
  int total_cols = 0;
  for (const Tensor& t : parts) {
    if (t.rows() != n) {
      throw std::invalid_argument("ConcatColsOp: row count mismatch");
    }
    total_cols += t.cols();
  }
  Matrix y = tape.NewMatrixUninit(n, total_cols);
  std::vector<TapeNode*> parents;
  std::vector<int> offsets;
  int off = 0;
  for (const Tensor& t : parts) {
    const Matrix& v = t.value();
    for (int i = 0; i < n; ++i) {
      const auto src = v.row(i);
      std::copy(src.begin(), src.end(), y.row(i).begin() + off);
    }
    parents.push_back(t.node());
    offsets.push_back(off);
    off += v.cols();
  }
  return tape.NewNode(
      std::move(y), parents,
      [parents, offsets](TapeNode& self) {
        for (size_t p = 0; p < parents.size(); ++p) {
          TapeNode* parent = parents[p];
          if (!parent->requires_grad) continue;
          const int off = offsets[p];
          for (int i = 0; i < parent->value.rows(); ++i) {
            for (int j = 0; j < parent->value.cols(); ++j) {
              parent->grad.at(i, j) += self.grad.at(i, off + j);
            }
          }
        }
      });
}

Tensor ConcatRowsOp(Tape& tape, std::span<const Tensor> parts) {
  if (parts.empty()) throw std::invalid_argument("ConcatRowsOp: empty");
  const int c = parts.front().cols();
  int total_rows = 0;
  for (const Tensor& t : parts) {
    if (t.cols() != c) {
      throw std::invalid_argument("ConcatRowsOp: col count mismatch");
    }
    total_rows += t.rows();
  }
  Matrix y = tape.NewMatrixUninit(total_rows, c);
  std::vector<TapeNode*> parents;
  std::vector<int> offsets;
  int off = 0;
  for (const Tensor& t : parts) {
    const Matrix& v = t.value();
    std::copy(v.flat().begin(), v.flat().end(), y.row(off).begin());
    parents.push_back(t.node());
    offsets.push_back(off);
    off += v.rows();
  }
  return tape.NewNode(
      std::move(y), parents,
      [parents, offsets](TapeNode& self) {
        for (size_t p = 0; p < parents.size(); ++p) {
          TapeNode* parent = parents[p];
          if (!parent->requires_grad) continue;
          const int off = offsets[p];
          for (int i = 0; i < parent->value.rows(); ++i) {
            for (int j = 0; j < parent->value.cols(); ++j) {
              parent->grad.at(i, j) += self.grad.at(off + i, j);
            }
          }
        }
      });
}

Tensor SliceRowOp(Tape& tape, Tensor x, int row) {
  const Matrix& xv = x.value();
  if (row < 0 || row >= xv.rows()) {
    throw std::out_of_range("SliceRowOp: row out of range");
  }
  Matrix y = tape.NewMatrixUninit(1, xv.cols());
  for (int j = 0; j < xv.cols(); ++j) y.at(0, j) = xv.at(row, j);
  TapeNode* xn = x.node();
  return tape.NewNode(std::move(y), {xn}, [xn, row](TapeNode& self) {
    for (int j = 0; j < self.grad.cols(); ++j) {
      xn->grad.at(row, j) += self.grad.at(0, j);
    }
  });
}

Tensor SliceRowsOp(Tape& tape, Tensor x, int begin, int rows) {
  const Matrix& xv = x.value();
  if (begin < 0 || rows < 0 || begin + rows > xv.rows()) {
    throw std::out_of_range("SliceRowsOp: range out of bounds");
  }
  Matrix y = tape.NewMatrixUninit(rows, xv.cols());
  if (rows > 0) {
    // Row-major: the slice is one contiguous block.
    const float* src = xv.data() + static_cast<size_t>(begin) * xv.cols();
    std::copy(src, src + y.flat().size(), y.flat().begin());
  }
  TapeNode* xn = x.node();
  return tape.NewNode(std::move(y), {xn}, [xn, begin](TapeNode& self) {
    for (int i = 0; i < self.grad.rows(); ++i) {
      for (int j = 0; j < self.grad.cols(); ++j) {
        xn->grad.at(begin + i, j) += self.grad.at(i, j);
      }
    }
  });
}

Tensor SliceColsOp(Tape& tape, Tensor x, int begin, int cols) {
  const Matrix& xv = x.value();
  if (begin < 0 || cols < 0 || begin + cols > xv.cols()) {
    throw std::out_of_range("SliceColsOp: range out of bounds");
  }
  Matrix y = tape.NewMatrixUninit(xv.rows(), cols);
  for (int i = 0; i < xv.rows(); ++i) {
    for (int j = 0; j < cols; ++j) y.at(i, j) = xv.at(i, begin + j);
  }
  TapeNode* xn = x.node();
  return tape.NewNode(std::move(y), {xn}, [xn, begin](TapeNode& self) {
    for (int i = 0; i < self.grad.rows(); ++i) {
      for (int j = 0; j < self.grad.cols(); ++j) {
        xn->grad.at(i, begin + j) += self.grad.at(i, j);
      }
    }
  });
}

Tensor LstmGatePreactOp(Tape& tape, Tensor x_rows, std::span<const int> ids,
                        Tensor h, Tensor w, Tensor bias) {
  const Matrix& xv = x_rows.value();
  const Matrix& hv = h.value();
  const Matrix& wv = w.value();
  const Matrix& bv = bias.value();
  const int batch = static_cast<int>(ids.size());
  const int out_cols = xv.cols();
  if (hv.rows() != batch || wv.rows() != hv.cols() || wv.cols() != out_cols ||
      bv.rows() != 1 || bv.cols() != out_cols) {
    throw std::invalid_argument("LstmGatePreactOp: shape mismatch");
  }
  Matrix y = tape.NewMatrixUninit(batch, out_cols);
  LstmGatePreactForward(y, xv, ids, hv, wv, bv);
  TapeNode* xn = x_rows.node();
  TapeNode* hn = h.node();
  TapeNode* wn = w.node();
  TapeNode* bn = bias.node();
  std::vector<int> ids_copy(ids.begin(), ids.end());
  const bool fused = FusedOpsEnabled();
  return tape.NewNode(
      std::move(y), {xn, hn, wn, bn},
      [xn, hn, wn, bn, ids = std::move(ids_copy), fused](TapeNode& self) {
        // Backward GEMMs below dispatch through the selected backend
        // (nn/gemm_backend.h), like MatMulOp's.
        const Matrix& g = self.grad;
        if (xn->requires_grad) {
          for (size_t r = 0; r < ids.size(); ++r) {
            for (int j = 0; j < g.cols(); ++j) {
              xn->grad.at(ids[r], j) += g.at(static_cast<int>(r), j);
            }
          }
        }
        if (hn->requires_grad) {
          if (fused) {
            MatMulTransposeBAccum(hn->grad, g, wn->value);
          } else {
            AccumulateInto(hn->grad, MatMulTransposeB(g, wn->value));
          }
        }
        if (wn->requires_grad) {
          if (fused) {
            MatMulTransposeAAccum(wn->grad, hn->value, g);
          } else {
            AccumulateInto(wn->grad, MatMulTransposeA(hn->value, g));
          }
        }
        if (bn->requires_grad) {
          if (fused) {
            for (int i = 0; i < g.rows(); ++i) {
              for (int j = 0; j < g.cols(); ++j) {
                bn->grad.at(0, j) += g.at(i, j);
              }
            }
          } else {
            AccumulateInto(bn->grad, ColSum(g));
          }
        }
      });
}

namespace {

void LstmCellBackward(const Matrix& gates, const Matrix& tanh_c, int hidden,
                      bool parallel_rows, TapeNode* pn, TapeNode* cn,
                      TapeNode& self) {
  const int batch = self.grad.rows();
  // Rows write disjoint grad rows of preact/c — same partitioning as the
  // forward pass.
  const auto cell_rows_backward = [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* __restrict g =
          gates.data() + static_cast<size_t>(r) * 4 * hidden;
      const float* __restrict tc =
          tanh_c.data() + static_cast<size_t>(r) * hidden;
      const float* __restrict dout =
          self.grad.data() + static_cast<size_t>(r) * 2 * hidden;
      const float* __restrict cp =
          cn->value.data() + static_cast<size_t>(r) * hidden;
      for (int j = 0; j < hidden; ++j) {
        const float i_g = g[j], f_g = g[hidden + j];
        const float g_g = g[2 * hidden + j], o_g = g[3 * hidden + j];
        const float t = tc[j];
        const float dh = dout[j];
        // dc combines the h path (through tanh) and the direct c output.
        const float dc = dh * o_g * (1.0f - t * t) + dout[hidden + j];
        if (pn->requires_grad) {
          float* __restrict dp =
              pn->grad.data() + static_cast<size_t>(r) * 4 * hidden;
          dp[j] += dc * g_g * i_g * (1.0f - i_g);
          dp[hidden + j] += dc * cp[j] * f_g * (1.0f - f_g);
          dp[2 * hidden + j] += dc * i_g * (1.0f - g_g * g_g);
          dp[3 * hidden + j] += dh * t * o_g * (1.0f - o_g);
        }
        if (cn->requires_grad) {
          cn->grad.data()[static_cast<size_t>(r) * hidden + j] += dc * f_g;
        }
      }
    }
  };
  if (parallel_rows) {
    core::ParallelFor(0, batch, 8, cell_rows_backward);
  } else {
    cell_rows_backward(0, batch);
  }
}

}  // namespace

Tensor LstmCellOp(Tape& tape, Tensor preact, Tensor c_prev) {
  const Matrix& pv = preact.value();
  const Matrix& cv = c_prev.value();
  const int batch = pv.rows();
  const int hidden = cv.cols();
  if (pv.cols() != 4 * hidden || cv.rows() != batch) {
    throw std::invalid_argument("LstmCellOp: expects [B,4h] preact, [B,h] c");
  }
  Matrix y = tape.NewMatrixUninit(batch, 2 * hidden);
  // Gate activations and tanh(c) — backward state, skipped for inference.
  const bool need_backward = tape.grad_enabled();
  Matrix gates = tape.NewMatrixUninit(need_backward ? batch : 0, 4 * hidden);
  Matrix tanh_c = tape.NewMatrixUninit(need_backward ? batch : 0, hidden);
  const bool parallel_rows =
      LstmCellForward(y, pv, cv, hidden, need_backward ? &gates : nullptr,
                      need_backward ? &tanh_c : nullptr);
  if (!need_backward) {
    return tape.NewNode(std::move(y), {preact.node(), c_prev.node()}, nullptr);
  }
  TapeNode* pn = preact.node();
  TapeNode* cn = c_prev.node();
  if (FusedOpsEnabled()) {
    // Backward state lives on the tape (arena-recycled), not in the closure.
    TapeNode* gates_node = tape.Leaf(std::move(gates)).node();
    TapeNode* tanh_c_node = tape.Leaf(std::move(tanh_c)).node();
    return tape.NewNode(std::move(y), {pn, cn},
                        [pn, cn, gates_node, tanh_c_node, hidden,
                         parallel_rows](TapeNode& self) {
                          LstmCellBackward(gates_node->value,
                                           tanh_c_node->value, hidden,
                                           parallel_rows, pn, cn, self);
                        });
  }
  return tape.NewNode(
      std::move(y), {pn, cn},
      [pn, cn, gates = std::move(gates), tanh_c = std::move(tanh_c), hidden,
       parallel_rows](TapeNode& self) {
        LstmCellBackward(gates, tanh_c, hidden, parallel_rows, pn, cn, self);
      });
}

namespace {

void CheckSegmentOffsets(const Matrix& x, std::span<const int> offsets,
                         const char* op) {
  CheckSegmentOffsetsFor(x.rows(), offsets, op);
}

// Runs `body(b0, b1)` over segments [0, batch), sharded across the pool when
// `parallel`. Every segment op writes disjoint output/grad row ranges per
// segment, so the partitioning (which never depends on pool width) is
// bit-exact at any thread count.
template <typename Body>
void ForEachSegment(int batch, bool parallel, const Body& body) {
  if (parallel) {
    core::ParallelFor(0, batch, 1, body);
  } else {
    body(0, batch);
  }
}

}  // namespace

Tensor SegmentSumOp(Tape& tape, Tensor x, std::span<const int> offsets) {
  const Matrix& xv = x.value();
  CheckSegmentOffsets(xv, offsets, "SegmentSumOp");
  const int batch = static_cast<int>(offsets.size()) - 1;
  Matrix y = tape.NewMatrix(batch, xv.cols());
  const bool parallel = SegmentSumForward(y, xv, offsets);
  TapeNode* xn = x.node();
  std::vector<int> offs(offsets.begin(), offsets.end());
  return tape.NewNode(
      std::move(y), {xn},
      [xn, offs = std::move(offs), parallel](TapeNode& self) {
        ForEachSegment(
            self.grad.rows(), parallel, [&](std::int64_t b0, std::int64_t b1) {
              for (std::int64_t b = b0; b < b1; ++b) {
                for (int i = offs[static_cast<size_t>(b)];
                     i < offs[static_cast<size_t>(b) + 1]; ++i) {
                  for (int j = 0; j < self.grad.cols(); ++j) {
                    xn->grad.at(i, j) += self.grad.at(static_cast<int>(b), j);
                  }
                }
              }
            });
      });
}

Tensor SegmentMeanOp(Tape& tape, Tensor x, std::span<const int> offsets) {
  const Matrix& xv = x.value();
  CheckSegmentOffsets(xv, offsets, "SegmentMeanOp");
  const int batch = static_cast<int>(offsets.size()) - 1;
  Matrix y = tape.NewMatrix(batch, xv.cols());
  std::vector<float> inv(static_cast<size_t>(batch), 0.0f);
  const bool parallel = SegmentMeanForward(y, xv, offsets, inv.data());
  TapeNode* xn = x.node();
  std::vector<int> offs(offsets.begin(), offsets.end());
  return tape.NewNode(
      std::move(y), {xn},
      [xn, offs = std::move(offs), inv = std::move(inv),
       parallel](TapeNode& self) {
        ForEachSegment(
            self.grad.rows(), parallel, [&](std::int64_t b0, std::int64_t b1) {
              for (std::int64_t b = b0; b < b1; ++b) {
                const float w = inv[static_cast<size_t>(b)];
                for (int i = offs[static_cast<size_t>(b)];
                     i < offs[static_cast<size_t>(b) + 1]; ++i) {
                  for (int j = 0; j < self.grad.cols(); ++j) {
                    xn->grad.at(i, j) +=
                        self.grad.at(static_cast<int>(b), j) * w;
                  }
                }
              }
            });
      });
}

Tensor SegmentMaxOp(Tape& tape, Tensor x, std::span<const int> offsets) {
  const Matrix& xv = x.value();
  CheckSegmentOffsets(xv, offsets, "SegmentMaxOp");
  const int batch = static_cast<int>(offsets.size()) - 1;
  Matrix y = tape.NewMatrix(batch, xv.cols());
  // argmax[b * cols + j] = row index of the max within segment b, column j.
  std::vector<int> argmax(static_cast<size_t>(batch) * xv.cols(), -1);
  const bool parallel = SegmentMaxForward(y, xv, offsets, argmax.data());
  TapeNode* xn = x.node();
  return tape.NewNode(
      std::move(y), {xn},
      [xn, argmax = std::move(argmax), parallel](TapeNode& self) {
        const int cols = self.grad.cols();
        ForEachSegment(
            self.grad.rows(), parallel, [&](std::int64_t b0, std::int64_t b1) {
              for (std::int64_t b = b0; b < b1; ++b) {
                for (int j = 0; j < cols; ++j) {
                  const int r = argmax[static_cast<size_t>(b) * cols + j];
                  if (r >= 0) {
                    xn->grad.at(r, j) += self.grad.at(static_cast<int>(b), j);
                  }
                }
              }
            });
      });
}

Tensor BlockDiagMatMulConstA(Tape& tape,
                             std::span<const Matrix* const> blocks,
                             std::span<const int> offsets, Tensor x) {
  const Matrix& xv = x.value();
  CheckSegmentOffsets(xv, offsets, "BlockDiagMatMulConstA");
  if (blocks.size() + 1 != offsets.size()) {
    throw std::invalid_argument("BlockDiagMatMulConstA: blocks/offsets size");
  }
  Matrix y = tape.NewMatrix(xv.rows(), xv.cols());  // accumulated: keep zeroed
  const bool parallel = BlockDiagMatMulForward(y, blocks, offsets, xv);
  TapeNode* xn = x.node();
  std::vector<const Matrix*> blocks_copy(blocks.begin(), blocks.end());
  std::vector<int> offs(offsets.begin(), offsets.end());
  return tape.NewNode(
      std::move(y), {xn},
      [xn, blocks = std::move(blocks_copy), offs = std::move(offs),
       parallel](TapeNode& self) {
        // dx[begin+k, :] += a[i, k] * dy[begin+i, :]. Blocks touch disjoint
        // grad row segments — same sharding as the forward pass.
        const auto backward_blocks = [&](std::int64_t b0, std::int64_t b1) {
          for (std::int64_t b = b0; b < b1; ++b) {
            const Matrix& a = *blocks[static_cast<size_t>(b)];
            const int begin = offs[static_cast<size_t>(b)];
            for (int i = 0; i < a.rows(); ++i) {
              for (int k = 0; k < a.cols(); ++k) {
                const float av = a.at(i, k);
                if (av == 0.0f) continue;
                for (int j = 0; j < self.grad.cols(); ++j) {
                  xn->grad.at(begin + k, j) += av * self.grad.at(begin + i, j);
                }
              }
            }
          }
        };
        ForEachSegment(static_cast<int>(blocks.size()), parallel,
                       backward_blocks);
      });
}

// ---- Fused block-diagonal attention ----------------------------------------

namespace {

// Flat storage offsets for the per-segment [len_b, len_b] attention
// matrices: segment b's probabilities occupy [sq[b], sq[b+1]) row-major.
// (SquaredSegmentOffsetsInto / MaxSegmentLength live in nn/op_kernels.cpp,
// shared with the compiled-plan executor.)
std::vector<std::int64_t> SquaredOffsets(std::span<const int> offsets) {
  std::vector<std::int64_t> sq;
  SquaredSegmentOffsetsInto(offsets, sq);
  return sq;
}

}  // namespace

Tensor BlockDiagSelfAttentionOp(Tape& tape, Tensor q, Tensor k, Tensor v,
                                std::span<const int> offsets, float scale) {
  const Matrix& qv = q.value();
  const Matrix& kv = k.value();
  const Matrix& vv = v.value();
  CheckSegmentOffsets(qv, offsets, "BlockDiagSelfAttentionOp");
  if (!kv.same_shape(qv) || vv.rows() != qv.rows()) {
    throw std::invalid_argument("BlockDiagSelfAttentionOp: shape mismatch");
  }
  const int batch = static_cast<int>(offsets.size()) - 1;
  const int dim = qv.cols();
  const int vdim = vv.cols();
  const std::vector<std::int64_t> sq = SquaredOffsets(offsets);
  const int max_len = MaxSegmentLength(offsets);
  const bool save = tape.grad_enabled();
  // The attention probabilities, saved for the backward on the tape itself
  // (arena-recycled) rather than in a closure capture.
  Matrix probs = save ? tape.NewMatrixUninit(1, static_cast<int>(sq.back()))
                      : Matrix();
  Matrix y = tape.NewMatrix(qv.rows(), vdim);
  const bool parallel = BlockDiagSelfAttentionForward(
      y, qv, kv, vv, offsets, sq, max_len, scale,
      save ? probs.data() : nullptr);
  TapeNode* qn = q.node();
  TapeNode* kn = k.node();
  TapeNode* vn = v.node();
  if (!save) return tape.NewNode(std::move(y), {qn, kn, vn}, nullptr);
  TapeNode* probs_node = tape.Leaf(std::move(probs)).node();
  std::vector<int> offs(offsets.begin(), offsets.end());
  return tape.NewNode(
      std::move(y), {qn, kn, vn},
      [qn, kn, vn, probs_node, offs = std::move(offs), sq, max_len, scale,
       parallel, dim, vdim](TapeNode& self) {
        // Per segment: dP = G v^T, softmax backward, then dq/dk/dv — all
        // row-streamed, so nothing is materialized beyond two len-sized
        // scratch rows per chunk. Segments touch disjoint grad rows of
        // every operand, so the sharding is bit-exact at any pool width.
        ForEachSegment(
            static_cast<int>(offs.size()) - 1, parallel,
            [&](std::int64_t b0, std::int64_t b1) {
              std::vector<float> dp(static_cast<size_t>(max_len));
              std::vector<float> ds(static_cast<size_t>(max_len));
              for (std::int64_t b = b0; b < b1; ++b) {
                const int begin = offs[static_cast<size_t>(b)];
                const int len = offs[static_cast<size_t>(b) + 1] - begin;
                const float* __restrict p_seg =
                    probs_node->value.data() + sq[static_cast<size_t>(b)];
                for (int i = 0; i < len; ++i) {
                  const float* __restrict gi =
                      self.grad.data() + static_cast<size_t>(begin + i) * vdim;
                  const float* __restrict pi =
                      p_seg + static_cast<std::int64_t>(i) * len;
                  // dP_i[j] = G_i . v_j
                  for (int j = 0; j < len; ++j) {
                    const float* __restrict vj =
                        vn->value.data() +
                        static_cast<size_t>(begin + j) * vdim;
                    float acc = 0.0f;
                    for (int c = 0; c < vdim; ++c) acc += gi[c] * vj[c];
                    dp[static_cast<size_t>(j)] = acc;
                  }
                  // Softmax backward (same double-precision row dot as
                  // SoftmaxRowsOp's closure).
                  double dot = 0;
                  for (int j = 0; j < len; ++j) {
                    dot += static_cast<double>(dp[static_cast<size_t>(j)]) *
                           pi[j];
                  }
                  for (int j = 0; j < len; ++j) {
                    ds[static_cast<size_t>(j)] =
                        pi[j] * (dp[static_cast<size_t>(j)] -
                                 static_cast<float>(dot));
                  }
                  if (qn->requires_grad) {
                    float* __restrict dqi =
                        qn->grad.data() + static_cast<size_t>(begin + i) * dim;
                    for (int j = 0; j < len; ++j) {
                      const float w = scale * ds[static_cast<size_t>(j)];
                      if (w == 0.0f) continue;
                      const float* __restrict kj =
                          kn->value.data() +
                          static_cast<size_t>(begin + j) * dim;
                      for (int c = 0; c < dim; ++c) dqi[c] += w * kj[c];
                    }
                  }
                  if (kn->requires_grad) {
                    const float* __restrict qi =
                        qn->value.data() + static_cast<size_t>(begin + i) * dim;
                    for (int j = 0; j < len; ++j) {
                      const float w = scale * ds[static_cast<size_t>(j)];
                      if (w == 0.0f) continue;
                      float* __restrict dkj =
                          kn->grad.data() +
                          static_cast<size_t>(begin + j) * dim;
                      for (int c = 0; c < dim; ++c) dkj[c] += w * qi[c];
                    }
                  }
                  if (vn->requires_grad) {
                    for (int j = 0; j < len; ++j) {
                      const float pij = pi[j];
                      if (pij == 0.0f) continue;
                      float* __restrict dvj =
                          vn->grad.data() +
                          static_cast<size_t>(begin + j) * vdim;
                      for (int c = 0; c < vdim; ++c) dvj[c] += pij * gi[c];
                    }
                  }
                }
              }
            });
      });
}

Tensor BlockDiagGatAttentionOp(Tape& tape, Tensor s, Tensor d, Tensor wh,
                               std::span<const Matrix* const> masks,
                               std::span<const int> offsets, float alpha) {
  const Matrix& sv = s.value();
  const Matrix& dv = d.value();
  const Matrix& whv = wh.value();
  CheckSegmentOffsets(whv, offsets, "BlockDiagGatAttentionOp");
  if (masks.size() + 1 != offsets.size()) {
    throw std::invalid_argument("BlockDiagGatAttentionOp: masks/offsets size");
  }
  if (sv.cols() != 1 || dv.cols() != 1 || sv.rows() != whv.rows() ||
      dv.rows() != whv.rows()) {
    throw std::invalid_argument(
        "BlockDiagGatAttentionOp: s/d must be [N, 1] logit columns");
  }
  const int batch = static_cast<int>(masks.size());
  const int dim = whv.cols();
  for (int b = 0; b < batch; ++b) {
    const int len = offsets[static_cast<size_t>(b) + 1] -
                    offsets[static_cast<size_t>(b)];
    const Matrix& m = *masks[static_cast<size_t>(b)];
    if (m.rows() != len || m.cols() != len) {
      throw std::invalid_argument("BlockDiagGatAttentionOp: mask shape");
    }
  }
  const std::vector<std::int64_t> sq = SquaredOffsets(offsets);
  const int max_len = MaxSegmentLength(offsets);
  const bool save = tape.grad_enabled();
  Matrix probs = save ? tape.NewMatrixUninit(1, static_cast<int>(sq.back()))
                      : Matrix();
  Matrix y = tape.NewMatrix(whv.rows(), dim);
  const bool parallel = BlockDiagGatAttentionForward(
      y, sv, dv, whv, masks, offsets, sq, max_len, alpha,
      save ? probs.data() : nullptr);
  TapeNode* sn = s.node();
  TapeNode* dn = d.node();
  TapeNode* whn = wh.node();
  if (!save) return tape.NewNode(std::move(y), {sn, dn, whn}, nullptr);
  TapeNode* probs_node = tape.Leaf(std::move(probs)).node();
  std::vector<int> offs(offsets.begin(), offsets.end());
  return tape.NewNode(
      std::move(y), {sn, dn, whn},
      [sn, dn, whn, probs_node, offs = std::move(offs), sq, max_len, alpha,
       parallel, dim](TapeNode& self) {
        // Per row: dP = G wh^T, masked softmax backward, LeakyReLU backward
        // (the pre-activation sign is recomputed from the s/d parent values
        // — nothing else is saved), then the OuterSum row/column sums.
        // Segments touch disjoint grad rows of s, d, and wh.
        ForEachSegment(
            static_cast<int>(offs.size()) - 1, parallel,
            [&](std::int64_t b0, std::int64_t b1) {
              std::vector<float> dp(static_cast<size_t>(max_len));
              std::vector<float> dz(static_cast<size_t>(max_len));
              for (std::int64_t b = b0; b < b1; ++b) {
                const int begin = offs[static_cast<size_t>(b)];
                const int len = offs[static_cast<size_t>(b) + 1] - begin;
                const float* __restrict p_seg =
                    probs_node->value.data() + sq[static_cast<size_t>(b)];
                for (int i = 0; i < len; ++i) {
                  const float* __restrict gi =
                      self.grad.data() + static_cast<size_t>(begin + i) * dim;
                  const float* __restrict pi =
                      p_seg + static_cast<std::int64_t>(i) * len;
                  // dP_i[j] = G_i . wh_j (only where P is non-zero; zero
                  // probabilities contribute nothing downstream).
                  for (int j = 0; j < len; ++j) {
                    if (pi[j] == 0.0f) {
                      dp[static_cast<size_t>(j)] = 0.0f;
                      continue;
                    }
                    const float* __restrict whj =
                        whn->value.data() +
                        static_cast<size_t>(begin + j) * dim;
                    float acc = 0.0f;
                    for (int c = 0; c < dim; ++c) acc += gi[c] * whj[c];
                    dp[static_cast<size_t>(j)] = acc;
                  }
                  double dot = 0;
                  for (int j = 0; j < len; ++j) {
                    dot += static_cast<double>(dp[static_cast<size_t>(j)]) *
                           pi[j];
                  }
                  const float si = sn->value.at(begin + i, 0);
                  float dsi = 0.0f;
                  for (int j = 0; j < len; ++j) {
                    const float dl =
                        pi[j] * (dp[static_cast<size_t>(j)] -
                                 static_cast<float>(dot));
                    const float z = si + dn->value.at(begin + j, 0);
                    const float g = dl * (z > 0 ? 1.0f : alpha);
                    dz[static_cast<size_t>(j)] = g;
                    dsi += g;
                  }
                  if (sn->requires_grad) sn->grad.at(begin + i, 0) += dsi;
                  if (dn->requires_grad) {
                    for (int j = 0; j < len; ++j) {
                      dn->grad.at(begin + j, 0) += dz[static_cast<size_t>(j)];
                    }
                  }
                  if (whn->requires_grad) {
                    for (int j = 0; j < len; ++j) {
                      const float pij = pi[j];
                      if (pij == 0.0f) continue;
                      float* __restrict dwhj =
                          whn->grad.data() +
                          static_cast<size_t>(begin + j) * dim;
                      for (int c = 0; c < dim; ++c) dwhj[c] += pij * gi[c];
                    }
                  }
                }
              }
            });
      });
}

Tensor ColSumOp(Tape& tape, Tensor x) {
  Matrix y = ColSum(x.value());
  TapeNode* xn = x.node();
  return tape.NewNode(std::move(y), {xn}, [xn](TapeNode& self) {
    for (int i = 0; i < xn->grad.rows(); ++i) {
      for (int j = 0; j < xn->grad.cols(); ++j) {
        xn->grad.at(i, j) += self.grad.at(0, j);
      }
    }
  });
}

Tensor ColMeanOp(Tape& tape, Tensor x) {
  Matrix y = ColMean(x.value());
  TapeNode* xn = x.node();
  const float inv = x.rows() > 0 ? 1.0f / static_cast<float>(x.rows()) : 0.0f;
  return tape.NewNode(std::move(y), {xn}, [xn, inv](TapeNode& self) {
    for (int i = 0; i < xn->grad.rows(); ++i) {
      for (int j = 0; j < xn->grad.cols(); ++j) {
        xn->grad.at(i, j) += self.grad.at(0, j) * inv;
      }
    }
  });
}

Tensor ColMaxOp(Tape& tape, Tensor x) {
  std::vector<int> argmax;
  Matrix y = ColMax(x.value(), &argmax);
  TapeNode* xn = x.node();
  return tape.NewNode(std::move(y), {xn},
                      [xn, argmax = std::move(argmax)](TapeNode& self) {
                        for (int j = 0; j < self.grad.cols(); ++j) {
                          xn->grad.at(argmax[static_cast<size_t>(j)], j) +=
                              self.grad.at(0, j);
                        }
                      });
}

Tensor SumAllOp(Tape& tape, Tensor x) {
  Matrix y(1, 1);
  double acc = 0;
  for (const float v : x.value().flat()) acc += v;
  y.at(0, 0) = static_cast<float>(acc);
  TapeNode* xn = x.node();
  return tape.NewNode(std::move(y), {xn}, [xn](TapeNode& self) {
    const float g = self.grad.at(0, 0);
    for (float& v : xn->grad.flat()) v += g;
  });
}

Tensor MeanAllOp(Tape& tape, Tensor x) {
  const float inv =
      x.value().size() > 0 ? 1.0f / static_cast<float>(x.value().size()) : 0.0f;
  Tensor s = SumAllOp(tape, x);
  return ScaleOp(tape, s, inv);
}

Tensor GatherRowsOp(Tape& tape, Tensor table, std::span<const int> ids) {
  const Matrix& tv = table.value();
  Matrix y = tape.NewMatrixUninit(static_cast<int>(ids.size()), tv.cols());
  GatherRowsForward(y, tv, ids);
  TapeNode* tn = table.node();
  std::vector<int> ids_copy(ids.begin(), ids.end());
  return tape.NewNode(std::move(y), {tn},
                      [tn, ids = std::move(ids_copy)](TapeNode& self) {
                        for (size_t i = 0; i < ids.size(); ++i) {
                          for (int j = 0; j < self.grad.cols(); ++j) {
                            tn->grad.at(ids[i], j) +=
                                self.grad.at(static_cast<int>(i), j);
                          }
                        }
                      });
}

Tensor OuterSumOp(Tape& tape, Tensor a, Tensor b) {
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  if (av.cols() != 1 || bv.cols() != 1) {
    throw std::invalid_argument("OuterSumOp: expects column vectors");
  }
  Matrix y = tape.NewMatrixUninit(av.rows(), bv.rows());
  for (int i = 0; i < av.rows(); ++i) {
    for (int j = 0; j < bv.rows(); ++j) {
      y.at(i, j) = av.at(i, 0) + bv.at(j, 0);
    }
  }
  TapeNode* an = a.node();
  TapeNode* bn = b.node();
  return tape.NewNode(std::move(y), {an, bn}, [an, bn](TapeNode& self) {
    if (an->requires_grad) {
      for (int i = 0; i < self.grad.rows(); ++i) {
        float acc = 0;
        for (int j = 0; j < self.grad.cols(); ++j) acc += self.grad.at(i, j);
        an->grad.at(i, 0) += acc;
      }
    }
    if (bn->requires_grad) {
      for (int j = 0; j < self.grad.cols(); ++j) {
        float acc = 0;
        for (int i = 0; i < self.grad.rows(); ++i) acc += self.grad.at(i, j);
        bn->grad.at(j, 0) += acc;
      }
    }
  });
}

Tensor TransposeOp(Tape& tape, Tensor x) {
  Matrix y = Transpose(x.value());
  TapeNode* xn = x.node();
  return tape.NewNode(std::move(y), {xn}, [xn](TapeNode& self) {
    AccumulateInto(xn->grad, Transpose(self.grad));
  });
}

}  // namespace tpuperf::nn
