#include "nn/losses.h"

#include <cmath>
#include <stdexcept>

#include "nn/ops.h"

namespace tpuperf::nn {
namespace {

void CheckPredictions(const Tensor& preds, size_t target_count) {
  if (preds.cols() != 1 ||
      static_cast<size_t>(preds.rows()) != target_count) {
    throw std::invalid_argument("loss: preds must be [n, 1] matching targets");
  }
}

}  // namespace

Tensor PairwiseRankLoss(Tape& tape, Tensor preds,
                        std::span<const double> targets,
                        RankSurrogate surrogate) {
  CheckPredictions(preds, targets.size());
  const int n = preds.rows();
  const Matrix& pv = preds.value();

  // Forward: average phi over ordered pairs. The denominator is the paper's
  // n(n-1)/2 regardless of how many pairs are actually ordered.
  const double denom = n > 1 ? 0.5 * n * (n - 1) : 1.0;
  double loss = 0;
  Matrix dpred(n, 1);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (!(targets[static_cast<size_t>(i)] > targets[static_cast<size_t>(j)]))
        continue;
      const double z =
          static_cast<double>(pv.at(i, 0)) - static_cast<double>(pv.at(j, 0));
      double phi = 0, dphi = 0;
      switch (surrogate) {
        case RankSurrogate::kHinge:
          phi = std::max(0.0, 1.0 - z);
          dphi = z < 1.0 ? -1.0 : 0.0;
          break;
        case RankSurrogate::kLogistic: {
          // log(1 + e^-z), numerically stable.
          phi = z > 0 ? std::log1p(std::exp(-z))
                      : -z + std::log1p(std::exp(z));
          dphi = -1.0 / (1.0 + std::exp(z));
          break;
        }
      }
      loss += phi;
      dpred.at(i, 0) += static_cast<float>(dphi / denom);
      dpred.at(j, 0) -= static_cast<float>(dphi / denom);
    }
  }
  Matrix out(1, 1);
  out.at(0, 0) = static_cast<float>(loss / denom);
  TapeNode* pn = preds.node();
  return tape.NewNode(std::move(out), {pn},
                      [pn, dpred = std::move(dpred)](TapeNode& self) {
                        AccumulateScaled(pn->grad, dpred, self.grad.at(0, 0));
                      });
}

namespace {

Tensor SquaredErrorLoss(Tape& tape, Tensor preds,
                        std::span<const double> transformed_targets) {
  const int n = preds.rows();
  Matrix target(n, 1);
  for (int i = 0; i < n; ++i) {
    target.at(i, 0) =
        static_cast<float>(transformed_targets[static_cast<size_t>(i)]);
  }
  Tensor t = tape.Leaf(std::move(target));
  Tensor diff = SubOp(tape, preds, t);
  return MeanAllOp(tape, MulOp(tape, diff, diff));
}

}  // namespace

Tensor MseLogLoss(Tape& tape, Tensor preds, std::span<const double> targets,
                  double eps) {
  CheckPredictions(preds, targets.size());
  std::vector<double> logs(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    logs[i] = std::log(targets[i] + eps);
  }
  return SquaredErrorLoss(tape, preds, logs);
}

Tensor MseLoss(Tape& tape, Tensor preds, std::span<const double> targets) {
  CheckPredictions(preds, targets.size());
  std::vector<double> copy(targets.begin(), targets.end());
  return SquaredErrorLoss(tape, preds, copy);
}

}  // namespace tpuperf::nn
