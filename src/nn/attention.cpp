#include "nn/attention.h"

#include <cmath>
#include <stdexcept>

namespace tpuperf::nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(ParamStore& store,
                                               const std::string& name,
                                               int dim, int num_heads,
                                               std::mt19937_64& rng) {
  if (num_heads <= 0 || dim % num_heads != 0) {
    throw std::invalid_argument("MHSA: dim must be divisible by num_heads");
  }
  head_dim_ = dim / num_heads;
  for (int h = 0; h < num_heads; ++h) {
    const std::string prefix = name + ".h" + std::to_string(h);
    heads_.push_back(Head{Linear(store, prefix + ".q", dim, head_dim_, rng),
                          Linear(store, prefix + ".k", dim, head_dim_, rng),
                          Linear(store, prefix + ".v", dim, head_dim_, rng)});
  }
  out_ = Linear(store, name + ".out", dim, dim, rng);
}

Tensor MultiHeadSelfAttention::Forward(Tape& tape, Tensor x) const {
  if (heads_.empty()) throw std::logic_error("MHSA: uninitialized");
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<Tensor> head_outputs;
  head_outputs.reserve(heads_.size());
  for (const Head& head : heads_) {
    Tensor q = head.q.Forward(tape, x);
    Tensor k = head.k.Forward(tape, x);
    Tensor v = head.v.Forward(tape, x);
    Tensor scores =
        ScaleOp(tape, MatMulOp(tape, q, TransposeOp(tape, k)), scale);
    Tensor attn = SoftmaxRowsOp(tape, scores);
    head_outputs.push_back(MatMulOp(tape, attn, v));
  }
  Tensor merged = ConcatColsOp(tape, head_outputs);
  return out_.Forward(tape, merged);
}

Tensor MultiHeadSelfAttention::Forward(Tape& tape, Tensor x,
                                       std::span<const int> offsets) const {
  if (heads_.empty()) throw std::logic_error("MHSA: uninitialized");
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<Tensor> head_outputs;
  head_outputs.reserve(heads_.size());
  for (const Head& head : heads_) {
    // Projections over the whole packed batch — single GEMMs.
    Tensor q = head.q.Forward(tape, x);
    Tensor k = head.k.Forward(tape, x);
    Tensor v = head.v.Forward(tape, x);
    // Attention stays per segment, fused into one differentiable op.
    head_outputs.push_back(
        BlockDiagSelfAttentionOp(tape, q, k, v, offsets, scale));
  }
  Tensor merged = ConcatColsOp(tape, head_outputs);
  return out_.Forward(tape, merged);
}

TransformerEncoderLayer::TransformerEncoderLayer(ParamStore& store,
                                                 const std::string& name,
                                                 int dim, int num_heads,
                                                 std::mt19937_64& rng)
    : attention_(store, name + ".attn", dim, num_heads, rng),
      norm1_(store, name + ".ln1", dim, rng),
      norm2_(store, name + ".ln2", dim, rng),
      ffn_(store, name + ".ffn", dim, {2 * dim, dim}, Activation::kRelu, rng,
           /*activate_last=*/false) {}

Tensor TransformerEncoderLayer::Forward(Tape& tape, Tensor x) const {
  Tensor attn = attention_.Forward(tape, norm1_.Forward(tape, x));
  Tensor h = AddOp(tape, x, attn);
  Tensor ffn = ffn_.Forward(tape, norm2_.Forward(tape, h));
  return AddOp(tape, h, ffn);
}

Tensor TransformerEncoderLayer::Forward(Tape& tape, Tensor x,
                                        std::span<const int> offsets) const {
  // Layer norms and the FFN are row-wise, so they run packed; only the
  // attention needs the segment structure.
  Tensor attn = attention_.Forward(tape, norm1_.Forward(tape, x), offsets);
  Tensor h = AddOp(tape, x, attn);
  Tensor ffn = ffn_.Forward(tape, norm2_.Forward(tape, h));
  return AddOp(tape, h, ffn);
}

TransformerEncoder::TransformerEncoder(ParamStore& store,
                                       const std::string& name, int dim,
                                       int num_heads, int num_layers,
                                       std::mt19937_64& rng) {
  for (int l = 0; l < num_layers; ++l) {
    layers_.emplace_back(store, name + ".layer" + std::to_string(l), dim,
                         num_heads, rng);
  }
}

Tensor TransformerEncoder::Forward(Tape& tape, Tensor x) const {
  Tensor h = x;
  for (const auto& layer : layers_) h = layer.Forward(tape, h);
  return h;
}

Tensor TransformerEncoder::Forward(Tape& tape, Tensor x,
                                   std::span<const int> offsets) const {
  Tensor h = x;
  for (const auto& layer : layers_) h = layer.Forward(tape, h, offsets);
  return h;
}

}  // namespace tpuperf::nn
