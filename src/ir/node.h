// A node in the tensor computation graph: one primitive tensor operation.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/opcode.h"
#include "ir/shape.h"

namespace tpuperf::ir {

using NodeId = int;
inline constexpr NodeId kInvalidNode = -1;

struct Node {
  NodeId id = kInvalidNode;
  OpCode op = OpCode::kParameter;
  // Output tensor shape. A node produces exactly one output (paper §2).
  Shape shape;
  // Ids of operand nodes inside the same graph. The graph maintains the
  // invariant that every operand id is smaller than the node's own id, which
  // makes node order a topological order and the graph acyclic by
  // construction.
  std::vector<NodeId> operands;
  // Convolution / reduce-window metadata; empty for other ops.
  Window window;
  // Dimensions reduced over (kReduce / kSoftmax) or contracted (kDot: the
  // contracting dimension of the LHS; RHS contracts its second-to-last dim).
  std::vector<int> reduce_dims;
  // Convolution feature counts (input/output channels) so cost analysis does
  // not need to re-derive them from operand shapes.
  std::int64_t feature_in = 0;
  std::int64_t feature_out = 0;
  // True when this node's value is an output of its kernel and is written
  // back to HBM. Kernel outputs are "expressed via an extra feature
  // associated with the output nodes" (§3.1).
  bool is_output = false;
};

}  // namespace tpuperf::ir
