#include "ir/shape.h"

#include <numeric>
#include <sstream>
#include <stdexcept>

namespace tpuperf::ir {

int ByteWidth(ElementType t) noexcept {
  switch (t) {
    case ElementType::kF32:
      return 4;
    case ElementType::kBF16:
      return 2;
    case ElementType::kS32:
      return 4;
    case ElementType::kPred:
      return 1;
  }
  return 4;
}

std::string_view ToString(ElementType t) noexcept {
  switch (t) {
    case ElementType::kF32:
      return "f32";
    case ElementType::kBF16:
      return "bf16";
    case ElementType::kS32:
      return "s32";
    case ElementType::kPred:
      return "pred";
  }
  return "f32";
}

Shape::Shape(std::vector<std::int64_t> dims, ElementType etype)
    : dims_(std::move(dims)), etype_(etype) {
  for (const auto d : dims_) {
    if (d <= 0) throw std::invalid_argument("shape dimensions must be > 0");
  }
  layout_.resize(dims_.size());
  // Default layout: last dimension is fastest-varying (row-major).
  for (size_t i = 0; i < layout_.size(); ++i) {
    layout_[i] = static_cast<int>(layout_.size() - 1 - i);
  }
}

Shape::Shape(std::initializer_list<std::int64_t> dims, ElementType etype)
    : Shape(std::vector<std::int64_t>(dims), etype) {}

void Shape::set_minor_to_major(std::vector<int> layout) {
  if (layout.size() != dims_.size()) {
    throw std::invalid_argument("layout rank mismatch");
  }
  std::vector<bool> seen(layout.size(), false);
  for (const int d : layout) {
    if (d < 0 || d >= rank() || seen[static_cast<size_t>(d)]) {
      throw std::invalid_argument("layout is not a permutation");
    }
    seen[static_cast<size_t>(d)] = true;
  }
  layout_ = std::move(layout);
}

std::int64_t Shape::num_elements() const noexcept {
  return std::accumulate(dims_.begin(), dims_.end(), std::int64_t{1},
                         std::multiplies<>());
}

std::int64_t Shape::byte_size() const noexcept {
  return num_elements() * ByteWidth(etype_);
}

bool Shape::operator==(const Shape& other) const noexcept {
  return dims_ == other.dims_ && layout_ == other.layout_ &&
         etype_ == other.etype_;
}

std::string Shape::ToString() const {
  std::ostringstream os;
  os << ir::ToString(etype_) << '[';
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) os << ',';
    os << dims_[i];
  }
  os << ']';
  os << '{';
  for (size_t i = 0; i < layout_.size(); ++i) {
    if (i > 0) os << ',';
    os << layout_[i];
  }
  os << '}';
  return os.str();
}

std::int64_t Window::TapCount() const noexcept {
  std::int64_t taps = 1;
  for (const auto& d : dims) taps *= d.size;
  return taps;
}

}  // namespace tpuperf::ir
