#include "ir/builder.h"

#include <stdexcept>
#include <utility>

namespace tpuperf::ir {
namespace {

std::int64_t ConvOutDim(std::int64_t in, std::int64_t window,
                        std::int64_t stride, Padding padding) {
  if (padding == Padding::kSame) return (in + stride - 1) / stride;
  return (in - window) / stride + 1;
}

}  // namespace

NodeId GraphBuilder::Parameter(Shape shape) {
  Node n;
  n.op = OpCode::kParameter;
  n.shape = std::move(shape);
  return Add(std::move(n));
}

NodeId GraphBuilder::Constant(Shape shape) {
  Node n;
  n.op = OpCode::kConstant;
  n.shape = std::move(shape);
  return Add(std::move(n));
}

NodeId GraphBuilder::Iota(Shape shape) {
  Node n;
  n.op = OpCode::kIota;
  n.shape = std::move(shape);
  return Add(std::move(n));
}

NodeId GraphBuilder::Unary(OpCode op, NodeId x) {
  if (!IsElementwiseUnary(op)) {
    throw std::invalid_argument("Unary() requires an elementwise unary op");
  }
  Node n;
  n.op = op;
  n.shape = shape_of(x);
  n.operands = {x};
  return Add(std::move(n));
}

NodeId GraphBuilder::Binary(OpCode op, NodeId a, NodeId b) {
  if (!IsElementwiseBinary(op)) {
    throw std::invalid_argument("Binary() requires an elementwise binary op");
  }
  if (shape_of(a).dims() != shape_of(b).dims()) {
    throw std::invalid_argument("Binary() operand shape mismatch: " +
                                shape_of(a).ToString() + " vs " +
                                shape_of(b).ToString());
  }
  Node n;
  n.op = op;
  n.shape = shape_of(a);
  if (op == OpCode::kCompare) {
    n.shape = Shape(shape_of(a).dims(), ElementType::kPred);
  }
  n.operands = {a, b};
  return Add(std::move(n));
}

NodeId GraphBuilder::Select(NodeId pred, NodeId on_true, NodeId on_false) {
  Node n;
  n.op = OpCode::kSelect;
  n.shape = shape_of(on_true);
  n.operands = {pred, on_true, on_false};
  return Add(std::move(n));
}

NodeId GraphBuilder::Broadcast(NodeId x, Shape to) {
  Node n;
  n.op = OpCode::kBroadcast;
  n.shape = std::move(to);
  n.operands = {x};
  return Add(std::move(n));
}

NodeId GraphBuilder::AddBias(NodeId x, NodeId bias) {
  const Shape& xs = shape_of(x);
  if (shape_of(bias).rank() != 1 ||
      shape_of(bias).dim(0) != xs.dim(xs.rank() - 1)) {
    throw std::invalid_argument("AddBias() bias must match last dim of x");
  }
  const NodeId broadcast = Broadcast(bias, xs);
  return Binary(OpCode::kAdd, x, broadcast);
}

NodeId GraphBuilder::Reshape(NodeId x, Shape to) {
  if (to.num_elements() != shape_of(x).num_elements()) {
    throw std::invalid_argument("Reshape() must preserve element count");
  }
  Node n;
  n.op = OpCode::kReshape;
  n.shape = std::move(to);
  n.operands = {x};
  return Add(std::move(n));
}

NodeId GraphBuilder::Transpose(NodeId x, std::vector<int> permutation) {
  const Shape& xs = shape_of(x);
  if (static_cast<int>(permutation.size()) != xs.rank()) {
    throw std::invalid_argument("Transpose() permutation rank mismatch");
  }
  std::vector<std::int64_t> dims(permutation.size());
  for (size_t i = 0; i < permutation.size(); ++i) {
    dims[i] = xs.dim(permutation[i]);
  }
  Node n;
  n.op = OpCode::kTranspose;
  n.shape = Shape(std::move(dims), xs.element_type());
  n.operands = {x};
  return Add(std::move(n));
}

NodeId GraphBuilder::Concatenate(std::vector<NodeId> xs, int dim) {
  if (xs.empty()) throw std::invalid_argument("Concatenate() needs operands");
  const Shape& first = shape_of(xs.front());
  std::vector<std::int64_t> dims = first.dims();
  for (size_t i = 1; i < xs.size(); ++i) {
    dims[static_cast<size_t>(dim)] += shape_of(xs[i]).dim(dim);
  }
  Node n;
  n.op = OpCode::kConcatenate;
  n.shape = Shape(std::move(dims), first.element_type());
  n.operands = std::move(xs);
  return Add(std::move(n));
}

NodeId GraphBuilder::Slice(NodeId x, Shape to) {
  const Shape& xs = shape_of(x);
  if (to.rank() != xs.rank()) {
    throw std::invalid_argument("Slice() rank mismatch");
  }
  for (int i = 0; i < to.rank(); ++i) {
    if (to.dim(i) > xs.dim(i)) {
      throw std::invalid_argument("Slice() result larger than input");
    }
  }
  Node n;
  n.op = OpCode::kSlice;
  n.shape = std::move(to);
  n.operands = {x};
  return Add(std::move(n));
}

NodeId GraphBuilder::Pad(NodeId x, Shape to) {
  const Shape& xs = shape_of(x);
  if (to.rank() != xs.rank()) {
    throw std::invalid_argument("Pad() rank mismatch");
  }
  Node n;
  n.op = OpCode::kPad;
  n.shape = std::move(to);
  n.operands = {x};
  return Add(std::move(n));
}

NodeId GraphBuilder::Dot(NodeId lhs, NodeId rhs) {
  const Shape& ls = shape_of(lhs);
  const Shape& rs = shape_of(rhs);
  if (ls.rank() < 1 || rs.rank() != 2) {
    throw std::invalid_argument("Dot() expects lhs[..., k] x rhs[k, n]");
  }
  const std::int64_t k = ls.dim(ls.rank() - 1);
  if (rs.dim(0) != k) {
    throw std::invalid_argument("Dot() contraction mismatch: " +
                                ls.ToString() + " x " + rs.ToString());
  }
  std::vector<std::int64_t> dims(ls.dims().begin(), ls.dims().end() - 1);
  dims.push_back(rs.dim(1));
  Node n;
  n.op = OpCode::kDot;
  n.shape = Shape(std::move(dims), ls.element_type());
  n.operands = {lhs, rhs};
  n.reduce_dims = {ls.rank() - 1};
  return Add(std::move(n));
}

NodeId GraphBuilder::Conv2d(NodeId input, NodeId filter, std::int64_t stride,
                            Padding padding) {
  const Shape& in = shape_of(input);    // NHWC
  const Shape& flt = shape_of(filter);  // HWIO
  if (in.rank() != 4 || flt.rank() != 4) {
    throw std::invalid_argument("Conv2d() expects NHWC input, HWIO filter");
  }
  if (in.dim(3) != flt.dim(2)) {
    throw std::invalid_argument("Conv2d() channel mismatch");
  }
  const std::int64_t h = ConvOutDim(in.dim(1), flt.dim(0), stride, padding);
  const std::int64_t w = ConvOutDim(in.dim(2), flt.dim(1), stride, padding);
  Node n;
  n.op = OpCode::kConvolution;
  n.shape = Shape({in.dim(0), h, w, flt.dim(3)}, in.element_type());
  n.operands = {input, filter};
  n.feature_in = flt.dim(2);
  n.feature_out = flt.dim(3);
  const std::int64_t pad_h =
      padding == Padding::kSame ? (flt.dim(0) - 1) / 2 : 0;
  const std::int64_t pad_w =
      padding == Padding::kSame ? (flt.dim(1) - 1) / 2 : 0;
  n.window.dims = {
      WindowDim{flt.dim(0), stride, pad_h, flt.dim(0) - 1 - pad_h, 1},
      WindowDim{flt.dim(1), stride, pad_w, flt.dim(1) - 1 - pad_w, 1}};
  return Add(std::move(n));
}

NodeId GraphBuilder::Pool2d(NodeId input, std::int64_t window,
                            std::int64_t stride) {
  const Shape& in = shape_of(input);  // NHWC
  if (in.rank() != 4) throw std::invalid_argument("Pool2d() expects NHWC");
  const std::int64_t h = ConvOutDim(in.dim(1), window, stride, Padding::kValid);
  const std::int64_t w = ConvOutDim(in.dim(2), window, stride, Padding::kValid);
  Node n;
  n.op = OpCode::kReduceWindow;
  n.shape = Shape({in.dim(0), h, w, in.dim(3)}, in.element_type());
  n.operands = {input};
  n.window.dims = {WindowDim{window, stride, 0, 0, 1},
                   WindowDim{window, stride, 0, 0, 1}};
  return Add(std::move(n));
}

NodeId GraphBuilder::Reduce(NodeId x, std::vector<int> dims) {
  const Shape& xs = shape_of(x);
  std::vector<std::int64_t> out_dims;
  for (int i = 0; i < xs.rank(); ++i) {
    bool reduced = false;
    for (const int d : dims) {
      if (d == i) reduced = true;
    }
    if (!reduced) out_dims.push_back(xs.dim(i));
  }
  if (out_dims.empty()) out_dims.push_back(1);
  Node n;
  n.op = OpCode::kReduce;
  n.shape = Shape(std::move(out_dims), xs.element_type());
  n.operands = {x};
  n.reduce_dims = std::move(dims);
  return Add(std::move(n));
}

NodeId GraphBuilder::Softmax(NodeId x) {
  Node n;
  n.op = OpCode::kSoftmax;
  n.shape = shape_of(x);
  n.operands = {x};
  n.reduce_dims = {shape_of(x).rank() - 1};
  return Add(std::move(n));
}

NodeId GraphBuilder::BatchNorm(NodeId x, NodeId scale, NodeId offset) {
  Node n;
  n.op = OpCode::kBatchNormInference;
  n.shape = shape_of(x);
  n.operands = {x, scale, offset};
  return Add(std::move(n));
}

NodeId GraphBuilder::Relu(NodeId x) {
  const NodeId zero = Constant(shape_of(x));
  return Binary(OpCode::kMaximum, x, zero);
}

NodeId GraphBuilder::Dense(NodeId x, std::int64_t out_features, bool relu) {
  const Shape& xs = shape_of(x);
  const std::int64_t in_features = xs.dim(xs.rank() - 1);
  const NodeId w =
      Parameter(Shape({in_features, out_features}, xs.element_type()));
  const NodeId b = Parameter(Shape({out_features}, xs.element_type()));
  NodeId y = Dot(x, w);
  y = AddBias(y, b);
  if (relu) y = Relu(y);
  return y;
}

Graph GraphBuilder::Build() && { return std::move(graph_); }

}  // namespace tpuperf::ir
