// Tensor shapes with element types and layouts.
//
// The paper's node features include "output tensor shape, tensor layout,
// striding, padding, and when applicable, convolution filter size" (§3.1).
// Shape carries the dimension extents plus a minor-to-major layout
// permutation, like XLA's shape-with-layout.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace tpuperf::ir {

enum class ElementType : std::uint8_t {
  kF32 = 0,
  kBF16,
  kS32,
  kPred,
};

// Bytes occupied by one element of the given type.
int ByteWidth(ElementType t) noexcept;
std::string_view ToString(ElementType t) noexcept;

// Maximum tensor rank the featurizer encodes without truncation. Tensors of
// higher rank are legal; their dimension lists are truncated when featurized
// (the sum/product features recover the lost volume, §3.1).
inline constexpr int kMaxEncodedRank = 6;

class Shape {
 public:
  Shape() = default;
  // Constructs a shape with the default (descending minor-to-major) layout.
  explicit Shape(std::vector<std::int64_t> dims,
                 ElementType etype = ElementType::kF32);
  Shape(std::initializer_list<std::int64_t> dims,
        ElementType etype = ElementType::kF32);

  int rank() const noexcept { return static_cast<int>(dims_.size()); }
  const std::vector<std::int64_t>& dims() const noexcept { return dims_; }
  std::int64_t dim(int i) const { return dims_.at(static_cast<size_t>(i)); }
  ElementType element_type() const noexcept { return etype_; }

  // Layout as a minor-to-major permutation of dimension indices;
  // minor_to_major()[0] is the fastest-varying dimension.
  const std::vector<int>& minor_to_major() const noexcept { return layout_; }
  void set_minor_to_major(std::vector<int> layout);
  // The fastest-varying dimension index, or -1 for rank-0 shapes.
  int minor_dim() const noexcept {
    return layout_.empty() ? -1 : layout_.front();
  }

  std::int64_t num_elements() const noexcept;
  std::int64_t byte_size() const noexcept;

  bool operator==(const Shape& other) const noexcept;
  bool operator!=(const Shape& other) const noexcept {
    return !(*this == other);
  }

  // e.g. "f32[64,128]{1,0}".
  std::string ToString() const;

 private:
  std::vector<std::int64_t> dims_;
  std::vector<int> layout_;  // minor-to-major
  ElementType etype_ = ElementType::kF32;
};

// Per-dimension window metadata for convolution / reduce-window, mirroring
// XLA's Window proto: filter size, stride, symmetric padding and dilation.
struct WindowDim {
  std::int64_t size = 1;
  std::int64_t stride = 1;
  std::int64_t padding_low = 0;
  std::int64_t padding_high = 0;
  std::int64_t dilation = 1;

  bool operator==(const WindowDim&) const = default;
};

struct Window {
  std::vector<WindowDim> dims;

  bool empty() const noexcept { return dims.empty(); }
  // Product of window sizes (taps per output element).
  std::int64_t TapCount() const noexcept;
  bool operator==(const Window&) const = default;
};

}  // namespace tpuperf::ir
