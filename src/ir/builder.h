// Convenience builder for constructing computation graphs with shape
// inference, used by the synthetic program generator and by tests/examples.
#pragma once

#include <initializer_list>
#include <vector>

#include "ir/graph.h"
#include "ir/node.h"
#include "ir/shape.h"

namespace tpuperf::ir {

enum class Padding { kSame, kValid };

class GraphBuilder {
 public:
  GraphBuilder() = default;

  NodeId Parameter(Shape shape);
  NodeId Constant(Shape shape);
  NodeId Iota(Shape shape);

  // Elementwise unary; output shape equals the operand shape.
  NodeId Unary(OpCode op, NodeId x);
  // Elementwise binary; operand shapes must match exactly.
  NodeId Binary(OpCode op, NodeId a, NodeId b);
  // select(pred, on_true, on_false).
  NodeId Select(NodeId pred, NodeId on_true, NodeId on_false);

  NodeId Broadcast(NodeId x, Shape to);
  // Broadcasts a rank-1 tensor along the last dimension of `like`'s shape
  // and adds it (a bias add), the most common broadcast in real programs.
  NodeId AddBias(NodeId x, NodeId bias);
  NodeId Reshape(NodeId x, Shape to);
  NodeId Transpose(NodeId x, std::vector<int> permutation);
  NodeId Concatenate(std::vector<NodeId> xs, int dim);
  NodeId Slice(NodeId x, Shape to);
  NodeId Pad(NodeId x, Shape to);

  // dot(lhs[..., m, k], rhs[k, n]) -> [..., m, n].
  NodeId Dot(NodeId lhs, NodeId rhs);
  // 2-D convolution, NHWC input and HWIO filter.
  NodeId Conv2d(NodeId input, NodeId filter, std::int64_t stride,
                Padding padding);
  // Max/avg pooling via reduce-window over the two spatial dims of NHWC.
  NodeId Pool2d(NodeId input, std::int64_t window, std::int64_t stride);

  // Reduce over `dims` (removed from the shape).
  NodeId Reduce(NodeId x, std::vector<int> dims);
  // Softmax over the last dimension.
  NodeId Softmax(NodeId x);
  NodeId BatchNorm(NodeId x, NodeId scale, NodeId offset);

  // Common fused idioms.
  NodeId Relu(NodeId x);      // maximum(x, 0)
  NodeId Tanh(NodeId x) { return Unary(OpCode::kTanh, x); }
  NodeId Sigmoid(NodeId x) { return Unary(OpCode::kLogistic, x); }

  // Fully connected layer: relu(x @ W + b) with fresh parameters.
  NodeId Dense(NodeId x, std::int64_t out_features, bool relu = true);

  // Returns by value: node storage may reallocate as nodes are added, so a
  // reference would dangle across subsequent builder calls.
  Shape shape_of(NodeId id) const { return graph_.node(id).shape; }
  void MarkOutput(NodeId id) { graph_.mutable_node(id).is_output = true; }

  // Finalizes and returns the graph. Nodes without users become outputs.
  Graph Build() &&;
  const Graph& graph() const noexcept { return graph_; }

 private:
  NodeId Add(Node n) { return graph_.AddNode(std::move(n)); }
  Graph graph_;
};

}  // namespace tpuperf::ir
