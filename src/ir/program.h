// A tensor program: a named computation graph of primitive operations.
//
// Programs are what the autotuner optimizes (paper Fig. 1). Before fusion a
// program is a single graph of primitive ops; the fusion pass partitions it
// into kernels (see data::FusionPass).
#pragma once

#include <string>

#include "ir/graph.h"

namespace tpuperf::ir {

struct Program {
  // Unique program name, e.g. "resnet_v1_50_b128".
  std::string name;
  // Model family the program belongs to, e.g. "ResNetV1". The trainer draws
  // examples evenly per family to counter dataset imbalance (paper §4).
  std::string family;
  // The primitive (pre-fusion) computation graph.
  Graph graph;
};

}  // namespace tpuperf::ir
