#include "ir/opcode.h"

#include <array>

namespace tpuperf::ir {
namespace {

constexpr std::array<std::string_view, kNumOpCodes> kNames = {
    "parameter",
    "constant",
    "iota",
    "copy",
    "convert",
    "bitcast",
    "broadcast",
    "reshape",
    "transpose",
    "slice",
    "dynamic-slice",
    "dynamic-update-slice",
    "concatenate",
    "pad",
    "reverse",
    "gather",
    "scatter",
    "add",
    "subtract",
    "multiply",
    "divide",
    "maximum",
    "minimum",
    "power",
    "remainder",
    "compare",
    "and",
    "or",
    "not",
    "negate",
    "abs",
    "sign",
    "exp",
    "log",
    "tanh",
    "logistic",
    "rsqrt",
    "sqrt",
    "floor",
    "ceil",
    "select",
    "clamp",
    "dot",
    "convolution",
    "reduce",
    "reduce-window",
    "softmax",
    "batch-norm-inference",
};

}  // namespace

std::string_view ToString(OpCode op) noexcept {
  const auto idx = static_cast<std::size_t>(op);
  if (idx >= kNames.size()) return "invalid";
  return kNames[idx];
}

bool IsElementwiseUnary(OpCode op) noexcept {
  switch (op) {
    case OpCode::kNot:
    case OpCode::kNegate:
    case OpCode::kAbs:
    case OpCode::kSign:
    case OpCode::kExp:
    case OpCode::kLog:
    case OpCode::kTanh:
    case OpCode::kLogistic:
    case OpCode::kRsqrt:
    case OpCode::kSqrt:
    case OpCode::kFloor:
    case OpCode::kCeil:
    case OpCode::kConvert:
    case OpCode::kCopy:
      return true;
    default:
      return false;
  }
}

bool IsElementwiseBinary(OpCode op) noexcept {
  switch (op) {
    case OpCode::kAdd:
    case OpCode::kSubtract:
    case OpCode::kMultiply:
    case OpCode::kDivide:
    case OpCode::kMaximum:
    case OpCode::kMinimum:
    case OpCode::kPower:
    case OpCode::kRemainder:
    case OpCode::kCompare:
    case OpCode::kAnd:
    case OpCode::kOr:
      return true;
    default:
      return false;
  }
}

bool IsElementwise(OpCode op) noexcept {
  return IsElementwiseUnary(op) || IsElementwiseBinary(op) ||
         op == OpCode::kSelect || op == OpCode::kClamp;
}

bool IsTranscendental(OpCode op) noexcept {
  switch (op) {
    case OpCode::kExp:
    case OpCode::kLog:
    case OpCode::kTanh:
    case OpCode::kLogistic:
    case OpCode::kRsqrt:
    case OpCode::kSqrt:
    case OpCode::kPower:
      return true;
    default:
      return false;
  }
}

bool UsesMatrixUnit(OpCode op) noexcept {
  return op == OpCode::kDot || op == OpCode::kConvolution;
}

bool IsDataMovement(OpCode op) noexcept {
  switch (op) {
    case OpCode::kParameter:
    case OpCode::kConstant:
    case OpCode::kIota:
    case OpCode::kBitcast:
    case OpCode::kBroadcast:
    case OpCode::kReshape:
    case OpCode::kTranspose:
    case OpCode::kSlice:
    case OpCode::kDynamicSlice:
    case OpCode::kDynamicUpdateSlice:
    case OpCode::kConcatenate:
    case OpCode::kPad:
    case OpCode::kReverse:
    case OpCode::kGather:
    case OpCode::kScatter:
      return true;
    default:
      return false;
  }
}

bool IsReduction(OpCode op) noexcept {
  switch (op) {
    case OpCode::kReduce:
    case OpCode::kReduceWindow:
    case OpCode::kSoftmax:
      return true;
    default:
      return false;
  }
}

int ExpectedOperandCount(OpCode op) noexcept {
  if (IsElementwiseUnary(op)) return 1;
  if (IsElementwiseBinary(op)) return 2;
  switch (op) {
    case OpCode::kParameter:
    case OpCode::kConstant:
    case OpCode::kIota:
      return 0;
    case OpCode::kBroadcast:
    case OpCode::kReshape:
    case OpCode::kTranspose:
    case OpCode::kSlice:
    case OpCode::kPad:
    case OpCode::kReverse:
    case OpCode::kReduce:
    case OpCode::kReduceWindow:
    case OpCode::kSoftmax:
    case OpCode::kBitcast:
      return 1;
    case OpCode::kDot:
    case OpCode::kConvolution:
    case OpCode::kGather:
    case OpCode::kDynamicSlice:
      return 2;
    case OpCode::kSelect:
    case OpCode::kClamp:
    case OpCode::kScatter:
    case OpCode::kDynamicUpdateSlice:
      return 3;
    case OpCode::kBatchNormInference:
      return 3;
    case OpCode::kConcatenate:
      return -1;  // variadic
    default:
      return -1;
  }
}

}  // namespace tpuperf::ir
