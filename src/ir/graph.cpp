#include "ir/graph.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace tpuperf::ir {
namespace {

// 64-bit FNV-1a, the workhorse for structural fingerprints.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void HashMix(std::uint64_t& h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

// Independent mixer (splitmix64 finalizer) for StructuralSignature, so the
// two hashes don't collide jointly.
void SigMix(std::uint64_t& h, std::uint64_t v) noexcept {
  std::uint64_t z = h + v + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  h = z ^ (z >> 31);
}

}  // namespace

NodeId Graph::AddNode(Node node) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  for (const NodeId operand : node.operands) {
    if (operand < 0 || operand >= id) {
      throw std::invalid_argument(
          "operand ids must reference earlier nodes (got " +
          std::to_string(operand) + " for node " + std::to_string(id) + ")");
    }
  }
  node.id = id;
  nodes_.push_back(std::move(node));
  return id;
}

std::vector<std::vector<NodeId>> Graph::UserLists() const {
  std::vector<std::vector<NodeId>> users(nodes_.size());
  for (const Node& n : nodes_) {
    for (const NodeId operand : n.operands) {
      users[static_cast<size_t>(operand)].push_back(n.id);
    }
  }
  return users;
}

std::vector<NodeId> Graph::ParameterIds() const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (n.op == OpCode::kParameter) out.push_back(n.id);
  }
  return out;
}

std::vector<NodeId> Graph::OutputIds() const {
  std::vector<bool> has_user(nodes_.size(), false);
  for (const Node& n : nodes_) {
    for (const NodeId operand : n.operands) {
      has_user[static_cast<size_t>(operand)] = true;
    }
  }
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (n.is_output || !has_user[static_cast<size_t>(n.id)]) {
      out.push_back(n.id);
    }
  }
  return out;
}

NodeId Graph::RootId() const {
  const auto outputs = OutputIds();
  if (outputs.empty()) return kInvalidNode;
  NodeId best = outputs.front();
  for (const NodeId id : outputs) {
    if (node(id).shape.num_elements() > node(best).shape.num_elements()) {
      best = id;
    }
  }
  return best;
}

int Graph::num_edges() const noexcept {
  int edges = 0;
  for (const Node& n : nodes_) edges += static_cast<int>(n.operands.size());
  return edges;
}

std::optional<std::string> Graph::Validate() const {
  if (nodes_.empty()) return "graph has no nodes";
  for (const Node& n : nodes_) {
    for (const NodeId operand : n.operands) {
      if (operand < 0 || operand >= n.id) {
        return "node " + std::to_string(n.id) + " has invalid operand " +
               std::to_string(operand);
      }
    }
    const int expected = ExpectedOperandCount(n.op);
    if (expected >= 0 && expected != static_cast<int>(n.operands.size())) {
      return std::string(ir::ToString(n.op)) + " node " + std::to_string(n.id) +
             " expects " + std::to_string(expected) + " operands, has " +
             std::to_string(n.operands.size());
    }
    if (n.shape.rank() == 0 && n.op != OpCode::kConstant &&
        n.op != OpCode::kReduce) {
      return "node " + std::to_string(n.id) + " has rank-0 shape";
    }
  }
  if (OutputIds().empty()) return "graph has no outputs";
  return std::nullopt;
}

std::vector<NodeId> Graph::TopologicalOrder() const {
  // The construction invariant guarantees id order is topological.
  std::vector<NodeId> order(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) order[i] = static_cast<NodeId>(i);
  return order;
}

std::uint64_t Graph::Fingerprint() const {
  std::uint64_t h = kFnvOffset;
  for (const Node& n : nodes_) {
    HashMix(h, static_cast<std::uint64_t>(n.op));
    HashMix(h, static_cast<std::uint64_t>(n.shape.element_type()));
    for (const auto d : n.shape.dims()) {
      HashMix(h, static_cast<std::uint64_t>(d));
    }
    for (const int l : n.shape.minor_to_major()) {
      HashMix(h, static_cast<std::uint64_t>(l) + 17);
    }
    for (const NodeId operand : n.operands) {
      HashMix(h, static_cast<std::uint64_t>(operand) + 1000003);
    }
    for (const auto& w : n.window.dims) {
      HashMix(h, static_cast<std::uint64_t>(w.size));
      HashMix(h, static_cast<std::uint64_t>(w.stride) + 3);
      HashMix(h, static_cast<std::uint64_t>(w.padding_low) + 7);
    }
    for (const int d : n.reduce_dims) {
      HashMix(h, static_cast<std::uint64_t>(d) + 31);
    }
    HashMix(h, n.is_output ? 2 : 1);
  }
  return h;
}

// Walks the same fields as Fingerprint (keep the two in sync) through an
// independent mixer; see the header for why both exist.
std::uint64_t Graph::StructuralSignature() const {
  std::uint64_t h = static_cast<std::uint64_t>(nodes_.size());
  for (const Node& n : nodes_) {
    SigMix(h, static_cast<std::uint64_t>(n.op));
    SigMix(h, static_cast<std::uint64_t>(n.shape.element_type()));
    for (const auto d : n.shape.dims()) {
      SigMix(h, static_cast<std::uint64_t>(d));
    }
    for (const int l : n.shape.minor_to_major()) {
      SigMix(h, static_cast<std::uint64_t>(l) + 17);
    }
    for (const NodeId operand : n.operands) {
      SigMix(h, static_cast<std::uint64_t>(operand) + 1000003);
    }
    for (const auto& w : n.window.dims) {
      SigMix(h, static_cast<std::uint64_t>(w.size));
      SigMix(h, static_cast<std::uint64_t>(w.stride) + 3);
      SigMix(h, static_cast<std::uint64_t>(w.padding_low) + 7);
    }
    for (const int d : n.reduce_dims) {
      SigMix(h, static_cast<std::uint64_t>(d) + 31);
    }
    SigMix(h, n.is_output ? 2 : 1);
  }
  return h;
}

std::string Graph::ToString() const {
  std::ostringstream os;
  for (const Node& n : nodes_) {
    os << '%' << n.id << " = " << ir::ToString(n.op) << ' '
       << n.shape.ToString() << '(';
    for (size_t i = 0; i < n.operands.size(); ++i) {
      if (i > 0) os << ", ";
      os << '%' << n.operands[i];
    }
    os << ')';
    if (n.is_output) os << " [output]";
    os << '\n';
  }
  return os.str();
}

std::string_view ToString(KernelKind k) noexcept {
  switch (k) {
    case KernelKind::kSingleOp:
      return "single-op";
    case KernelKind::kLoopFusion:
      return "loop-fusion";
    case KernelKind::kConvFusion:
      return "conv-fusion";
    case KernelKind::kDataFormatting:
      return "data-formatting";
  }
  return "invalid";
}

KernelKind Kernel::Classify(const Graph& g) {
  int non_param = 0;
  bool has_mxu = false;
  bool all_data_movement = true;
  for (const Node& n : g.nodes()) {
    if (n.op == OpCode::kParameter) continue;
    ++non_param;
    if (UsesMatrixUnit(n.op)) has_mxu = true;
    if (!IsDataMovement(n.op)) all_data_movement = false;
  }
  if (has_mxu) {
    return non_param > 1 ? KernelKind::kConvFusion : KernelKind::kConvFusion;
  }
  if (all_data_movement && non_param > 0) return KernelKind::kDataFormatting;
  if (non_param <= 1) return KernelKind::kSingleOp;
  return KernelKind::kLoopFusion;
}

}  // namespace tpuperf::ir
