// Opcode vocabulary for the HLO-like tensor IR.
//
// A node in a computation graph represents one tensor operation (paper §2):
// it consumes one or more input tensors and produces a single output tensor.
// The opcode set below mirrors the XLA HLO instructions that appear in the
// programs the paper evaluates (dense/conv workloads, seq2seq, recommendation).
#pragma once

#include <cstdint>
#include <string_view>

namespace tpuperf::ir {

enum class OpCode : std::uint8_t {
  // Data sources / plumbing.
  kParameter = 0,
  kConstant,
  kIota,
  kCopy,
  kConvert,
  kBitcast,

  // Shape manipulation.
  kBroadcast,
  kReshape,
  kTranspose,
  kSlice,
  kDynamicSlice,
  kDynamicUpdateSlice,
  kConcatenate,
  kPad,
  kReverse,
  kGather,
  kScatter,

  // Elementwise binary.
  kAdd,
  kSubtract,
  kMultiply,
  kDivide,
  kMaximum,
  kMinimum,
  kPower,
  kRemainder,
  kCompare,
  kAnd,
  kOr,

  // Elementwise unary.
  kNot,
  kNegate,
  kAbs,
  kSign,
  kExp,
  kLog,
  kTanh,
  kLogistic,
  kRsqrt,
  kSqrt,
  kFloor,
  kCeil,

  // Ternary.
  kSelect,
  kClamp,

  // Heavy compute.
  kDot,
  kConvolution,

  // Reductions & windows.
  kReduce,
  kReduceWindow,
  kSoftmax,
  kBatchNormInference,

  kOpCodeCount,  // Sentinel; keep last.
};

inline constexpr int kNumOpCodes = static_cast<int>(OpCode::kOpCodeCount);

// Human-readable lowercase mnemonic, e.g. "convolution".
std::string_view ToString(OpCode op) noexcept;

// Classification helpers used by the fusion pass, simulator and featurizer.
bool IsElementwiseUnary(OpCode op) noexcept;
bool IsElementwiseBinary(OpCode op) noexcept;
bool IsElementwise(OpCode op) noexcept;  // unary, binary or ternary elementwise
// Transcendental / special-function-unit ops (exp, tanh, ...). These execute
// on a dedicated serial unit on the simulated TPU (paper §3.1 feature (4)).
bool IsTranscendental(OpCode op) noexcept;
// Ops that execute on the systolic MXU (matrix units).
bool UsesMatrixUnit(OpCode op) noexcept;
// Pure data-movement / relabeling ops with ~zero compute cost.
bool IsDataMovement(OpCode op) noexcept;
// Ops that reduce over one or more dimensions.
bool IsReduction(OpCode op) noexcept;
// Number of operands the opcode expects (-1 for variadic).
int ExpectedOperandCount(OpCode op) noexcept;

}  // namespace tpuperf::ir
