#include "ir/analysis.h"

#include <algorithm>

namespace tpuperf::ir::analysis {

CostSummary& CostSummary::operator+=(const CostSummary& other) {
  flops += other.flops;
  mxu_flops += other.mxu_flops;
  vector_ops += other.vector_ops;
  transcendental_ops += other.transcendental_ops;
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  peak_working_set_bytes =
      std::max(peak_working_set_bytes, other.peak_working_set_bytes);
  return *this;
}

CostSummary AnalyzeNode(const Node& node, const Graph& graph) {
  CostSummary c;
  const double out_elems = static_cast<double>(node.shape.num_elements());

  switch (node.op) {
    case OpCode::kParameter:
    case OpCode::kConstant:
    case OpCode::kIota:
    case OpCode::kBitcast:
      break;  // free

    case OpCode::kDot: {
      // lhs[..., m, k] x rhs[..., k, n]: contraction length is the last
      // dimension of the lhs operand.
      const Shape& lhs = graph.node(node.operands.at(0)).shape;
      const std::int64_t k =
          lhs.rank() > 0 ? lhs.dim(lhs.rank() - 1) : 1;
      c.flops = out_elems * 2.0 * static_cast<double>(k);
      c.mxu_flops = c.flops;
      break;
    }

    case OpCode::kConvolution: {
      // out elems x 2 x window taps x input features (MACs).
      const std::int64_t taps = std::max<std::int64_t>(1, node.window.TapCount());
      std::int64_t cin = node.feature_in;
      if (cin <= 0) {
        const Shape& in = graph.node(node.operands.at(0)).shape;
        cin = in.rank() > 0 ? in.dim(in.rank() - 1) : 1;  // NHWC
      }
      c.flops = out_elems * 2.0 * static_cast<double>(taps) *
                static_cast<double>(cin);
      c.mxu_flops = c.flops;
      break;
    }

    case OpCode::kReduce: {
      const Shape& in = graph.node(node.operands.at(0)).shape;
      const double in_elems = static_cast<double>(in.num_elements());
      c.flops = in_elems;
      c.vector_ops = in_elems;
      break;
    }

    case OpCode::kReduceWindow: {
      const std::int64_t taps = std::max<std::int64_t>(1, node.window.TapCount());
      c.flops = out_elems * static_cast<double>(taps);
      c.vector_ops = c.flops;
      break;
    }

    case OpCode::kSoftmax: {
      // max, subtract, exp, sum, divide: ~5 passes; exp + divide hit the SFU.
      c.flops = out_elems * 5.0;
      c.vector_ops = out_elems * 4.0;
      c.transcendental_ops = out_elems;
      break;
    }

    case OpCode::kBatchNormInference: {
      // (x - mean) * inv_stddev * scale + offset: 4 vector passes.
      c.flops = out_elems * 4.0;
      c.vector_ops = c.flops;
      break;
    }

    default: {
      if (IsDataMovement(node.op)) {
        // Data formatting occupies the vector/permute units but does no FP
        // arithmetic.
        c.vector_ops = out_elems;
        break;
      }
      // Elementwise unary/binary/ternary.
      const double ops_per_elem =
          node.op == OpCode::kSelect || node.op == OpCode::kClamp ? 2.0 : 1.0;
      c.flops = out_elems * ops_per_elem;
      c.vector_ops = c.flops;
      if (IsTranscendental(node.op)) c.transcendental_ops = out_elems;
      break;
    }
  }

  // Working set of this node: operands + output.
  std::int64_t ws = node.shape.byte_size();
  for (const NodeId operand : node.operands) {
    ws += graph.node(operand).shape.byte_size();
  }
  c.peak_working_set_bytes = ws;
  return c;
}

CostSummary AnalyzeKernel(const Graph& graph) {
  CostSummary total;
  for (const Node& n : graph.nodes()) {
    total += AnalyzeNode(n, graph);
    if (n.op == OpCode::kParameter || n.op == OpCode::kConstant) {
      total.bytes_read += n.shape.byte_size();
    }
  }
  for (const NodeId id : graph.OutputIds()) {
    total.bytes_written += graph.node(id).shape.byte_size();
  }
  return total;
}

double ScratchpadBytesPerOutputElement(const Graph& graph) {
  const NodeId root = graph.RootId();
  if (root == kInvalidNode) return 8.0;
  const double root_elems = std::max<double>(
      1.0, static_cast<double>(graph.node(root).shape.num_elements()));
  const CostSummary c = AnalyzeKernel(graph);
  const double traffic = static_cast<double>(c.bytes_read + c.bytes_written) +
                         0.5 * static_cast<double>(c.peak_working_set_bytes);
  // Factor 2 for the double-buffered copy-in/compute/copy-out pipeline.
  const double per_elem = 2.0 * traffic / root_elems;
  const double floor =
      2.0 * ByteWidth(graph.node(root).shape.element_type());
  return std::max(per_elem, floor);
}

}  // namespace tpuperf::ir::analysis
