// Kernel graphs: directed acyclic dataflow graphs of tensor operations.
//
// After XLA's fusion pass, a program is a set of kernels; each kernel is a
// small graph of primitive operations (paper Fig. 2). `Graph` is the node
// container used both for whole (pre-fusion) programs and for individual
// kernels; `Kernel` adds kernel-level metadata.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/node.h"

namespace tpuperf::ir {

class Graph {
 public:
  Graph() = default;

  // Appends a node; assigns and returns its id. Throws std::invalid_argument
  // if any operand id is out of range or >= the new node's id (the invariant
  // that keeps the graph acyclic and topologically ordered).
  NodeId AddNode(Node node);

  int num_nodes() const noexcept { return static_cast<int>(nodes_.size()); }
  const Node& node(NodeId id) const { return nodes_.at(static_cast<size_t>(id)); }
  Node& mutable_node(NodeId id) { return nodes_.at(static_cast<size_t>(id)); }
  const std::vector<Node>& nodes() const noexcept { return nodes_; }

  // Users of each node (inverse edges), recomputed on demand.
  std::vector<std::vector<NodeId>> UserLists() const;

  // Ids of kParameter nodes, in id order.
  std::vector<NodeId> ParameterIds() const;

  // Ids of output nodes: nodes flagged is_output plus any node with no users.
  std::vector<NodeId> OutputIds() const;

  // The root: the output node with the largest output tensor; tiling is
  // driven by its shape. Returns kInvalidNode for empty graphs.
  NodeId RootId() const;

  // Total number of dataflow edges.
  int num_edges() const noexcept;

  // Verifies structural invariants (operand ordering, operand counts,
  // non-empty). Returns an error description, or nullopt when valid.
  std::optional<std::string> Validate() const;

  // Node ids in topological order (operands before users). With the
  // construction invariant this is simply 0..n-1, but the function verifies.
  std::vector<NodeId> TopologicalOrder() const;

  // Stable structural fingerprint covering opcodes, shapes, windows and
  // edges; used to deduplicate kernels in the fusion dataset (§4).
  std::uint64_t Fingerprint() const;

  // Second structural hash over the same fields with an independent mixing
  // scheme. Callers that key by Fingerprint (e.g. core::PreparedCache) use
  // it to detect fingerprint collisions between distinct graphs — a joint
  // collision of both hashes is astronomically unlikely. Keep its field
  // walk in sync with Fingerprint's.
  std::uint64_t StructuralSignature() const;

  // Multi-line textual dump for debugging, one node per line.
  std::string ToString() const;

 private:
  std::vector<Node> nodes_;
};

// Kernel kinds mirror XLA's distinction between unfused single ops and fused
// computations; the analytical model scales its output by a per-kind
// coefficient in the fusion task (paper §5.2).
enum class KernelKind : std::uint8_t {
  kSingleOp = 0,  // one primitive op
  kLoopFusion,    // fused elementwise/reduction region
  kConvFusion,    // fused region containing a convolution or dot
  kDataFormatting,  // pure data-movement region (reshape/transpose/...)
};

std::string_view ToString(KernelKind k) noexcept;

struct Kernel {
  Graph graph;
  KernelKind kind = KernelKind::kSingleOp;

  // Classifies the kernel from its graph contents.
  static KernelKind Classify(const Graph& g);
};

}  // namespace tpuperf::ir
