// Static cost analysis of kernel graphs.
//
// These are the "static analyses that determine high-level performance
// metrics of a given kernel" (paper §3.1): floating point operation count,
// bytes read, bytes written, and the number of instructions executing on the
// special functional unit. They are *estimates* — deliberately blind to the
// backend's code generation — and are shared by the analytical baseline, the
// featurizer (optional static performance features) and the tile enumerator.
#pragma once

#include <cstdint>

#include "ir/graph.h"
#include "ir/node.h"

namespace tpuperf::ir::analysis {

struct CostSummary {
  // Total floating-point operations (MXU + vector).
  double flops = 0;
  // Subset of flops executed on the systolic matrix unit (dot/convolution).
  double mxu_flops = 0;
  // Elementwise vector-unit element operations.
  double vector_ops = 0;
  // Operations executing on the special (transcendental) functional unit —
  // static performance feature (4) in §3.1.
  double transcendental_ops = 0;
  // HBM traffic: bytes of kernel parameters read and outputs written —
  // static performance features (2) and (3).
  std::int64_t bytes_read = 0;
  std::int64_t bytes_written = 0;
  // Largest single-node working set (operands + output), a proxy for
  // scratchpad pressure of intermediates.
  std::int64_t peak_working_set_bytes = 0;

  CostSummary& operator+=(const CostSummary& other);
};

// Cost of a single node, given its defining graph (operand shapes matter).
CostSummary AnalyzeNode(const Node& node, const Graph& graph);

// Aggregate cost of a kernel graph. bytes_read/bytes_written cover parameter
// and output tensors only (intermediates stay in scratchpad after fusion).
CostSummary AnalyzeKernel(const Graph& graph);

// Scratchpad bytes consumed per element of the root output tile: output
// element + the pro-rated input elements + intermediate slack, doubled for
// the copy-in/compute/copy-out pipeline (paper Appendix A). Drives the tile
// enumerator's footprint bound.
double ScratchpadBytesPerOutputElement(const Graph& graph);

}  // namespace tpuperf::ir::analysis
