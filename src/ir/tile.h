// Tile configurations and the valid-tile enumerator.
//
// A kernel computes one piece (tile) of its output at a time from pieces of
// its inputs because the on-chip scratchpad is small (paper §2.2). A
// TileConfig assigns a tile extent to every dimension of the kernel root's
// output shape. The enumerator mirrors XLA: it lists every valid tile size
// for a kernel (2 to 500,000 options in the paper; bounded here).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/graph.h"
#include "ir/shape.h"

namespace tpuperf::ir {

struct TileConfig {
  // Tile extent per output dimension; same rank as the root output shape.
  std::vector<std::int64_t> dims;

  bool operator==(const TileConfig&) const = default;

  std::int64_t volume() const noexcept;
  std::string ToString() const;
};

// True when `tile` has the same rank as `shape` and 1 <= tile[i] <= dim[i].
bool IsValidTile(const TileConfig& tile, const Shape& shape) noexcept;

// Number of tile iterations: prod(ceil(dim_i / tile_i)).
std::int64_t TileIterations(const TileConfig& tile, const Shape& shape);

struct TileEnumeratorOptions {
  // Per-tile scratchpad footprint bound in bytes (double-buffered working
  // set must fit the simulated vmem).
  std::int64_t scratchpad_bytes = 16ll * 1024 * 1024;
  // Upper bound on returned configs; the full candidate cross-product is
  // deterministically subsampled above this.
  int max_configs = 1024;
  // Hardware-aligned extents (multiples of the 128-wide MXU / 8-sublane VPU)
  // are added as candidates in addition to powers of two.
  bool include_hardware_aligned = true;
};

// Enumerates valid tile configurations for the kernel rooted at
// `root_shape`. `per_element_footprint` is the scratchpad bytes consumed per
// output tile element (inputs + intermediates + output, double-buffered);
// compute it with analysis::ScratchpadBytesPerOutputElement.
std::vector<TileConfig> EnumerateTiles(const Shape& root_shape,
                                       double per_element_footprint,
                                       const TileEnumeratorOptions& options);

}  // namespace tpuperf::ir
