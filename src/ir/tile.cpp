#include "ir/tile.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace tpuperf::ir {
namespace {

// Candidate tile extents for one dimension: powers of two up to the extent,
// the full extent, and (optionally) hardware-aligned values.
std::vector<std::int64_t> DimCandidates(std::int64_t dim, bool hw_aligned) {
  std::vector<std::int64_t> c;
  for (std::int64_t v = 1; v < dim; v *= 2) c.push_back(v);
  c.push_back(dim);
  if (hw_aligned) {
    for (const std::int64_t v : {std::int64_t{8}, std::int64_t{128},
                                 std::int64_t{256}, std::int64_t{384}}) {
      if (v < dim) c.push_back(v);
    }
  }
  std::sort(c.begin(), c.end());
  c.erase(std::unique(c.begin(), c.end()), c.end());
  return c;
}

}  // namespace

std::int64_t TileConfig::volume() const noexcept {
  std::int64_t v = 1;
  for (const auto d : dims) v *= d;
  return v;
}

std::string TileConfig::ToString() const {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < dims.size(); ++i) {
    if (i > 0) os << ',';
    os << dims[i];
  }
  os << ']';
  return os.str();
}

bool IsValidTile(const TileConfig& tile, const Shape& shape) noexcept {
  if (static_cast<int>(tile.dims.size()) != shape.rank()) return false;
  for (int i = 0; i < shape.rank(); ++i) {
    const auto t = tile.dims[static_cast<size_t>(i)];
    if (t < 1 || t > shape.dim(i)) return false;
  }
  return true;
}

std::int64_t TileIterations(const TileConfig& tile, const Shape& shape) {
  std::int64_t iters = 1;
  for (int i = 0; i < shape.rank(); ++i) {
    const auto t = tile.dims[static_cast<size_t>(i)];
    iters *= (shape.dim(i) + t - 1) / t;
  }
  return iters;
}

std::vector<TileConfig> EnumerateTiles(const Shape& root_shape,
                                       double per_element_footprint,
                                       const TileEnumeratorOptions& options) {
  const int rank = root_shape.rank();
  if (rank == 0) return {TileConfig{}};

  std::vector<std::vector<std::int64_t>> per_dim;
  per_dim.reserve(static_cast<size_t>(rank));
  for (int i = 0; i < rank; ++i) {
    per_dim.push_back(
        DimCandidates(root_shape.dim(i), options.include_hardware_aligned));
  }

  // Cross product with footprint pruning.
  std::vector<TileConfig> all;
  std::vector<size_t> idx(static_cast<size_t>(rank), 0);
  const double budget = static_cast<double>(options.scratchpad_bytes);
  while (true) {
    TileConfig cfg;
    cfg.dims.resize(static_cast<size_t>(rank));
    for (int i = 0; i < rank; ++i) {
      cfg.dims[static_cast<size_t>(i)] = per_dim[static_cast<size_t>(i)][idx[static_cast<size_t>(i)]];
    }
    const double footprint =
        static_cast<double>(cfg.volume()) * per_element_footprint;
    if (footprint <= budget) all.push_back(std::move(cfg));

    // Advance the odometer.
    int d = rank - 1;
    while (d >= 0) {
      if (++idx[static_cast<size_t>(d)] <
          per_dim[static_cast<size_t>(d)].size()) {
        break;
      }
      idx[static_cast<size_t>(d)] = 0;
      --d;
    }
    if (d < 0) break;
  }

  if (all.empty()) {
    // Even a single-element tile busts the budget only for degenerate
    // footprints; fall back to the all-ones tile so every kernel has at
    // least one configuration.
    TileConfig ones;
    ones.dims.assign(static_cast<size_t>(rank), 1);
    all.push_back(std::move(ones));
  }

  if (static_cast<int>(all.size()) <= options.max_configs) return all;

  // Deterministic stride subsample, always keeping the last (full) config.
  std::vector<TileConfig> sampled;
  sampled.reserve(static_cast<size_t>(options.max_configs));
  const double stride =
      static_cast<double>(all.size()) / options.max_configs;
  for (int i = 0; i < options.max_configs; ++i) {
    sampled.push_back(all[static_cast<size_t>(i * stride)]);
  }
  sampled.back() = all.back();
  return sampled;
}

}  // namespace tpuperf::ir
