/// \file
/// Model snapshots: one self-contained artifact a prediction service can be
/// constructed from. A snapshot bundles everything inference needs — the
/// trained parameters, the fitted FeatureScaler statistics, and the
/// ModelConfig that shaped the network — inside the dataset store's record
/// framing (dataset/store.h), reusing its magic/version/checksum corruption
/// guarantees and atomic-rename writer:
///
///     record 1: kModelConfigRecordType — every ModelConfig field, encoded
///               explicitly (enums validated on load)
///     record 2: kModelParamsRecordType — LearnedCostModel::Save() bytes
///               (scaler stats + named/shape-checked parameter store)
///
/// LoadModelSnapshot reverses the process: decode the config, construct the
/// model from it, then stream the parameter record through
/// LearnedCostModel::Load (which re-checks parameter names and shapes, so a
/// config/params mismatch fails loudly instead of mispredicting).
#pragma once

#include <chrono>
#include <memory>
#include <string>

#include "core/cost_model.h"

namespace tpuperf::serve {

/// Writes `model` (config + scalers + parameters) to `path` atomically.
/// Throws data::StoreError on I/O failure.
void SaveModelSnapshot(const std::string& path,
                       const core::LearnedCostModel& model);

/// Reads a snapshot written by SaveModelSnapshot and reconstructs the model.
/// Throws data::StoreError on any corruption, truncation, missing record, or
/// config/parameter mismatch.
std::unique_ptr<core::LearnedCostModel> LoadModelSnapshot(
    const std::string& path);

/// LoadModelSnapshot with bounded-backoff retry: up to `max_attempts` loads,
/// sleeping `initial_backoff`, then doubling (capped at 100ms), between
/// attempts. Snapshot loads race real fleet events — an atomic-rename
/// publish, a transient network-filesystem hiccup (modeled by the
/// `snapshot.load_fail` fault point) — where the Nth retry succeeds; a
/// genuinely corrupt file just fails `max_attempts` times, and the last
/// data::StoreError is rethrown. Used by the PredictionService snapshot
/// constructor.
std::unique_ptr<core::LearnedCostModel> LoadModelSnapshotWithRetry(
    const std::string& path, int max_attempts = 3,
    std::chrono::microseconds initial_backoff =
        std::chrono::microseconds(500));

}  // namespace tpuperf::serve
