#include "serve/prediction_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/env.h"
#include "core/fault_injection.h"
#include "core/thread_pool.h"
#include "nn/ops.h"
#include "plan/plan.h"
#include "serve/snapshot.h"
#include "sim/target.h"

namespace tpuperf::serve {

using Clock = std::chrono::steady_clock;

ServiceConfig ServiceConfig::FromEnv() {
  ServiceConfig c;
  c.max_batch = static_cast<int>(
      core::EnvInt("TPUPERF_SERVE_MAX_BATCH", c.max_batch, 1, 4096));
  c.deadline_us = static_cast<long>(
      core::EnvInt("TPUPERF_SERVE_DEADLINE_US", c.deadline_us, 0, 10000000));
  c.num_threads =
      static_cast<int>(core::EnvInt("TPUPERF_SERVE_THREADS", 0, 0, 4096));
  c.plan_enable = static_cast<int>(
      core::EnvInt("TPUPERF_PLAN_ENABLE", c.plan_enable, 0, 1));
  c.plan_cache = static_cast<int>(
      core::EnvInt("TPUPERF_PLAN_CACHE", c.plan_cache, 0, 64));
  c.queue_cap = static_cast<int>(
      core::EnvInt("TPUPERF_SERVE_QUEUE_CAP", c.queue_cap, 0, 1 << 20));
  c.overload_policy = static_cast<OverloadPolicy>(core::EnvEnum(
      "TPUPERF_SERVE_OVERLOAD_POLICY", static_cast<int>(c.overload_policy),
      {{"reject", static_cast<int>(OverloadPolicy::kReject)},
       {"block", static_cast<int>(OverloadPolicy::kBlock)},
       {"shed_oldest", static_cast<int>(OverloadPolicy::kShedOldest)}}));
  c.request_timeout_us = static_cast<long>(core::EnvInt(
      "TPUPERF_SERVE_REQUEST_TIMEOUT_US", c.request_timeout_us, 0, 60000000));
  c.breaker_failures = static_cast<int>(core::EnvInt(
      "TPUPERF_SERVE_BREAKER_FAILURES", c.breaker_failures, 0, 1000000));
  c.breaker_cooldown_us = static_cast<long>(core::EnvInt(
      "TPUPERF_SERVE_BREAKER_COOLDOWN_US", c.breaker_cooldown_us, 0,
      60000000));
  c.precision = nn::PrecisionFromEnv();
  return c;
}

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {}

std::pair<int, int> PlanCache::Bucket(int num_kernels, int total_nodes) {
  const auto next_pow2 = [](int v) {
    int p = 1;
    while (p < v) p *= 2;
    return p;
  };
  // node_capacity must cover at least one node per kernel (the planner
  // rejects max_total_nodes < max_kernels).
  const int b = next_pow2(num_kernels < 1 ? 1 : num_kernels);
  const int n = next_pow2(total_nodes < b ? b : total_nodes);
  return {b, n};
}

std::shared_ptr<const plan::CompiledPlan> PlanCache::Lookup(int num_kernels,
                                                            int total_nodes) {
  const std::pair<int, int> bucket = Bucket(num_kernels, total_nodes);
  std::lock_guard lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->bucket == bucket) {
      entries_.splice(entries_.begin(), entries_, it);
      return entries_.front().plan;
    }
  }
  return nullptr;
}

void PlanCache::Insert(int num_kernels, int total_nodes,
                       std::shared_ptr<const plan::CompiledPlan> plan) {
  if (capacity_ == 0) return;
  const std::pair<int, int> bucket = Bucket(num_kernels, total_nodes);
  std::lock_guard lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->bucket == bucket) {
      it->plan = std::move(plan);
      entries_.splice(entries_.begin(), entries_, it);
      return;
    }
  }
  entries_.push_front(Entry{bucket, std::move(plan)});
  while (entries_.size() > capacity_) entries_.pop_back();
}

std::size_t PlanCache::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

// One queued prediction. The promise is fulfilled by whichever worker runs
// the batch this request was flushed into — or by the batcher (expiry), or
// by an overloaded PredictAsync (shedding).
struct PendingRequest {
  const ir::Graph* kernel = nullptr;
  std::uint64_t fingerprint = 0;
  std::optional<ir::TileConfig> tile;
  std::optional<Clock::time_point> deadline;
  std::promise<PredictResult> promise;
};

struct ServiceImpl {
  explicit ServiceImpl(int num_threads) : pool(num_threads) {}

  core::ThreadPool pool;

  // Plan-compiled scoring (null when the plan path is disabled).
  std::unique_ptr<PlanCache> plan_cache;

  std::mutex mu;               // guards queue + stopping
  std::condition_variable cv;  // batcher wakeup (new request / shutdown)
  std::condition_variable space_cv;  // producer wakeup (policy `block`)
  std::deque<PendingRequest> queue;
  bool stopping = false;

  std::mutex inflight_mu;  // guards inflight_batches
  std::condition_variable inflight_cv;
  std::size_t inflight_batches = 0;

  std::mutex shutdown_mu;  // serializes Shutdown callers
  bool joined = false;     // guarded by shutdown_mu
  std::thread batcher;

  // Circuit breaker (guarded by breaker_mu). `consecutive_failures` counts
  // model-level batch failures; per-request featurize failures do not trip
  // the breaker (they are request bugs, not model outages).
  std::mutex breaker_mu;
  PredictionService::BreakerState breaker_state =
      PredictionService::BreakerState::kClosed;
  int consecutive_failures = 0;
  Clock::time_point breaker_open_until{};

  // Stats (monotonic; see ServiceStats).
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> size_flushes{0};
  std::atomic<std::uint64_t> deadline_flushes{0};
  std::atomic<std::uint64_t> shutdown_flushes{0};
  std::atomic<std::uint64_t> batched_items{0};
  std::atomic<std::uint64_t> plan_hits{0};
  std::atomic<std::uint64_t> plan_misses{0};
  std::atomic<std::uint64_t> plan_compiles{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> expired{0};
  std::atomic<std::uint64_t> degraded{0};
  std::atomic<std::uint64_t> breaker_transitions{0};
  std::atomic<std::uint64_t> reduced_precision_batches{0};
};

namespace {

using BreakerState = PredictionService::BreakerState;

// Counts a batch scored while the model runs at a reduced precision.
void NoteReducedPrecision(const core::LearnedCostModel& model,
                          ServiceImpl& impl) {
  if (model.precision() != nn::Precision::kFloat32) {
    impl.reduced_precision_batches.fetch_add(1, std::memory_order_relaxed);
  }
}

// Scores a packed batch, preferring a cached compiled plan (compiling one
// for the batch's shape bucket on a miss). Any plan-path failure — a model
// configuration the planner rejects, fused ops disabled, an injected
// plan.compile_fail — falls back to the tape path, which is always
// available; the two paths are bit-identical.
std::vector<double> ScorePacked(const core::LearnedCostModel& model,
                                const core::PreparedBatch& packed,
                                ServiceImpl& impl) {
  if (impl.plan_cache != nullptr && nn::FusedOpsEnabled()) {
    const int b = packed.num_kernels();
    const int n = packed.total_nodes();
    std::shared_ptr<const plan::CompiledPlan> plan =
        impl.plan_cache->Lookup(b, n);
    if (plan != nullptr) {
      impl.plan_hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      impl.plan_misses.fetch_add(1, std::memory_order_relaxed);
      const std::pair<int, int> bucket = PlanCache::Bucket(b, n);
      try {
        plan = model.CompilePlan(bucket.first, bucket.second);
        impl.plan_cache->Insert(b, n, plan);
        impl.plan_compiles.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        plan = nullptr;  // fall through to the tape path
      }
    }
    if (plan != nullptr) {
      NoteReducedPrecision(model, impl);
      return model.PredictBatchWithPlan(*plan, packed);
    }
  }
  NoteReducedPrecision(model, impl);
  return model.PredictBatch(packed);
}

// How ProcessBatch answers this batch, decided once per batch against the
// breaker. kProbe is the half-open trial: exactly one batch retries the
// model while everything else keeps degrading.
enum class Route { kModel, kDegraded, kProbe };

Route ChooseRoute(ServiceImpl& impl, const ServiceConfig& config) {
  if (config.breaker_failures <= 0) return Route::kModel;
  std::lock_guard lock(impl.breaker_mu);
  switch (impl.breaker_state) {
    case BreakerState::kClosed:
      return Route::kModel;
    case BreakerState::kOpen:
      if (Clock::now() < impl.breaker_open_until) return Route::kDegraded;
      impl.breaker_state = BreakerState::kHalfOpen;
      impl.breaker_transitions.fetch_add(1, std::memory_order_relaxed);
      return Route::kProbe;
    case BreakerState::kHalfOpen:
      return Route::kDegraded;
  }
  return Route::kModel;
}

void SetBreaker(ServiceImpl& impl, BreakerState next) {
  if (impl.breaker_state == next) return;
  impl.breaker_state = next;
  impl.breaker_transitions.fetch_add(1, std::memory_order_relaxed);
}

void OnModelSuccess(ServiceImpl& impl, Route route) {
  std::lock_guard lock(impl.breaker_mu);
  impl.consecutive_failures = 0;
  if (route == Route::kProbe) SetBreaker(impl, BreakerState::kClosed);
}

void OnModelFailure(ServiceImpl& impl, const ServiceConfig& config,
                    Route route) {
  if (config.breaker_failures <= 0) return;
  std::lock_guard lock(impl.breaker_mu);
  if (route == Route::kProbe) {
    // Probe failed: back to a full cooldown of degradation.
    impl.breaker_open_until =
        Clock::now() + std::chrono::microseconds(config.breaker_cooldown_us);
    SetBreaker(impl, BreakerState::kOpen);
    return;
  }
  if (++impl.consecutive_failures >= config.breaker_failures &&
      impl.breaker_state == BreakerState::kClosed) {
    impl.consecutive_failures = 0;
    impl.breaker_open_until =
        Clock::now() + std::chrono::microseconds(config.breaker_cooldown_us);
    SetBreaker(impl, BreakerState::kOpen);
  }
}

// A probe batch that never reached the model (every request failed
// featurization) proved nothing: reopen so the next batch can probe again.
void AbandonProbe(ServiceImpl& impl, const ServiceConfig& config) {
  std::lock_guard lock(impl.breaker_mu);
  if (impl.breaker_state != BreakerState::kHalfOpen) return;
  impl.breaker_open_until =
      Clock::now() + std::chrono::microseconds(config.breaker_cooldown_us);
  SetBreaker(impl, BreakerState::kOpen);
}

// The degraded answer for one request: the deterministic analytical
// estimate under the request's tile, or — when the request carried none —
// under the trivial full-shape tile (one iteration over the root output).
double AnalyticalEstimate(const analytical::AnalyticalModel& fallback,
                          const ir::Graph& kernel,
                          const std::optional<ir::TileConfig>& tile) {
  if (tile.has_value()) return fallback.EstimateRuntime(kernel, *tile);
  ir::TileConfig full;
  const ir::NodeId root = kernel.RootId();
  if (root != ir::kInvalidNode) {
    const ir::Shape& shape = kernel.node(root).shape;
    full.dims.reserve(static_cast<std::size_t>(shape.rank()));
    for (int i = 0; i < shape.rank(); ++i) full.dims.push_back(shape.dim(i));
  }
  return fallback.EstimateRuntime(kernel, full);
}

void DegradeBatch(const analytical::AnalyticalModel& fallback,
                  std::vector<PendingRequest*>& live, ServiceImpl& impl) {
  for (PendingRequest* p : live) {
    try {
      const double estimate = AnalyticalEstimate(fallback, *p->kernel, p->tile);
      p->promise.set_value(PredictResult{estimate, /*degraded=*/true});
      impl.degraded.fetch_add(1, std::memory_order_relaxed);
      impl.completed.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      impl.failed.fetch_add(1, std::memory_order_relaxed);
      p->promise.set_exception(std::current_exception());
    }
  }
}

// Scores one flushed batch and fulfills its promises. A per-request prepare
// failure fails only that request; a model-level failure fails the batch
// (and feeds the circuit breaker, which routes later batches to the
// analytical fallback while open).
void ProcessBatch(const core::LearnedCostModel& model,
                  core::PreparedCache& cache,
                  const analytical::AnalyticalModel& fallback,
                  const ServiceConfig& config,
                  std::vector<PendingRequest> batch, ServiceImpl& impl) {
  struct InflightGuard {
    ServiceImpl& impl;
    ~InflightGuard() {
      std::lock_guard lock(impl.inflight_mu);
      --impl.inflight_batches;
      impl.inflight_cv.notify_all();
    }
  } guard{impl};

  // Models a stalled worker (lock contention, page fault storm): requests
  // keep queueing behind it and deadlines keep running.
  if (core::FaultPointFires("batch.slow")) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  const Route route = ChooseRoute(impl, config);
  if (route == Route::kDegraded) {
    std::vector<PendingRequest*> live;
    live.reserve(batch.size());
    for (PendingRequest& p : batch) live.push_back(&p);
    DegradeBatch(fallback, live, impl);
    return;
  }

  std::vector<core::BatchItem> items;
  std::vector<PendingRequest*> live;
  items.reserve(batch.size());
  live.reserve(batch.size());
  for (PendingRequest& p : batch) {
    try {
      const core::PreparedKernel& prepared =
          cache.Get(*p.kernel, p.fingerprint);
      items.push_back(core::BatchItem{
          &prepared, p.tile.has_value() ? &*p.tile : nullptr});
      live.push_back(&p);
    } catch (...) {
      impl.failed.fetch_add(1, std::memory_order_relaxed);
      p.promise.set_exception(std::current_exception());
    }
  }
  if (live.empty()) {
    if (route == Route::kProbe) AbandonProbe(impl, config);
    return;
  }

  try {
    // Models a model-side outage (the error class the breaker exists for).
    core::MaybeInjectFault("model.predict_throw");
    const core::PreparedBatch packed = model.PrepareBatch(items);
    const std::vector<double> scores = ScorePacked(model, packed, impl);
    for (std::size_t i = 0; i < live.size(); ++i) {
      live[i]->promise.set_value(PredictResult{scores[i], /*degraded=*/false});
    }
    impl.completed.fetch_add(live.size(), std::memory_order_relaxed);
    OnModelSuccess(impl, route);
  } catch (...) {
    OnModelFailure(impl, config, route);
    if (config.breaker_failures > 0) {
      // The model just proved unhealthy; answer THIS batch analytically too
      // instead of failing futures the breaker would have saved a moment
      // later.
      DegradeBatch(fallback, live, impl);
    } else {
      impl.failed.fetch_add(live.size(), std::memory_order_relaxed);
      for (PendingRequest* p : live) {
        p->promise.set_exception(std::current_exception());
      }
    }
  }
}

}  // namespace

PredictionService::PredictionService(
    std::unique_ptr<core::LearnedCostModel> model, ServiceConfig config)
    : config_(config), model_(std::move(model)) {
  if (model_ == nullptr) {
    throw std::invalid_argument("PredictionService: null model");
  }
  if (!model_->fitted()) {
    throw std::invalid_argument(
        "PredictionService: model scalers are not fitted (train or load a "
        "snapshot first)");
  }
  if (config_.max_batch < 1) config_.max_batch = 1;
  if (config_.deadline_us < 0) config_.deadline_us = 0;
  if (config_.queue_cap < 0) config_.queue_cap = 0;
  if (config_.request_timeout_us < 0) config_.request_timeout_us = 0;
  if (config_.breaker_failures < 0) config_.breaker_failures = 0;
  if (config_.breaker_cooldown_us < 0) config_.breaker_cooldown_us = 0;
  // Quantize before the prepared cache exists, so every cached
  // featurization is prepared (fake-quantized) at the serving precision.
  if (config_.precision != nn::Precision::kFloat32) {
    model_->SetPrecision(config_.precision);
  }
  cache_ = std::make_unique<core::PreparedCache>(*model_);
  fallback_ =
      std::make_unique<analytical::AnalyticalModel>(sim::TpuTarget::V2());
  const int threads = config_.num_threads > 0
                          ? config_.num_threads
                          : core::ThreadPool::DefaultNumThreads();
  impl_ = std::make_unique<ServiceImpl>(threads);
  if (config_.plan_enable != 0 && config_.plan_cache > 0) {
    impl_->plan_cache =
        std::make_unique<PlanCache>(static_cast<std::size_t>(config_.plan_cache));
  }
  impl_->batcher = std::thread([this] { BatcherLoop(); });
}

PredictionService::PredictionService(const std::string& snapshot_path,
                                     ServiceConfig config)
    : PredictionService(LoadModelSnapshotWithRetry(snapshot_path), config) {}

PredictionService::~PredictionService() { Shutdown(); }

std::future<PredictResult> PredictionService::PredictAsync(
    const ir::Graph& kernel, const ir::TileConfig* tile,
    PredictOptions options) {
  PendingRequest p;
  p.kernel = &kernel;
  p.fingerprint = kernel.Fingerprint();
  if (tile != nullptr) p.tile = *tile;
  if (options.deadline.has_value()) {
    p.deadline = *options.deadline;
  } else if (config_.request_timeout_us > 0) {
    p.deadline =
        Clock::now() + std::chrono::microseconds(config_.request_timeout_us);
  }
  std::future<PredictResult> future = p.promise.get_future();
  std::optional<PendingRequest> victim;  // shed under the lock, failed after
  {
    std::unique_lock lock(impl_->mu);
    if (impl_->stopping) {
      throw std::runtime_error(
          "PredictionService: PredictAsync after Shutdown");
    }
    const std::size_t cap = config_.queue_cap > 0
                                ? static_cast<std::size_t>(config_.queue_cap)
                                : static_cast<std::size_t>(-1);
    if (impl_->queue.size() >= cap) {
      switch (config_.overload_policy) {
        case OverloadPolicy::kReject:
          impl_->rejected.fetch_add(1, std::memory_order_relaxed);
          throw OverloadedError(
              "PredictionService: queue full (" + std::to_string(cap) +
              " waiting, policy reject)");
        case OverloadPolicy::kBlock:
          impl_->space_cv.wait(lock, [&] {
            return impl_->stopping || impl_->queue.size() < cap;
          });
          if (impl_->stopping) {
            throw std::runtime_error(
                "PredictionService: PredictAsync after Shutdown");
          }
          break;
        case OverloadPolicy::kShedOldest:
          victim = std::move(impl_->queue.front());
          impl_->queue.pop_front();
          impl_->shed.fetch_add(1, std::memory_order_relaxed);
          break;
      }
    }
    impl_->queue.push_back(std::move(p));
  }
  impl_->requests.fetch_add(1, std::memory_order_relaxed);
  impl_->cv.notify_one();
  if (victim.has_value()) {
    victim->promise.set_exception(std::make_exception_ptr(OverloadedError(
        "PredictionService: shed by a newer request (policy shed_oldest)")));
  }
  return future;
}

double PredictionService::Predict(const ir::Graph& kernel,
                                  const ir::TileConfig* tile) {
  return PredictAsync(kernel, tile).get().value;
}

void PredictionService::BatcherLoop() {
  ServiceImpl& impl = *impl_;
  const auto deadline_budget = std::chrono::microseconds(config_.deadline_us);
  const std::size_t max_batch = static_cast<std::size_t>(config_.max_batch);
  std::unique_lock lock(impl.mu);
  while (true) {
    impl.cv.wait(lock, [&] { return impl.stopping || !impl.queue.empty(); });
    if (impl.queue.empty()) break;  // stopping with nothing left to flush

    // A batch window opens at the first queued request the batcher observes;
    // it closes when the window fills, the deadline passes, or we shut down.
    const auto deadline = Clock::now() + deadline_budget;
    const bool filled = impl.cv.wait_until(lock, deadline, [&] {
      return impl.queue.size() >= max_batch || impl.stopping;
    });

    // Dequeue up to max_batch LIVE requests: expired ones fail with
    // DeadlineExceeded here, before they burn a batch slot.
    const auto now = Clock::now();
    std::vector<PendingRequest> batch;
    std::vector<PendingRequest> lapsed;
    batch.reserve(std::min(impl.queue.size(), max_batch));
    while (!impl.queue.empty() && batch.size() < max_batch) {
      PendingRequest p = std::move(impl.queue.front());
      impl.queue.pop_front();
      if (p.deadline.has_value() && now > *p.deadline) {
        lapsed.push_back(std::move(p));
      } else {
        batch.push_back(std::move(p));
      }
    }
    impl.space_cv.notify_all();  // freed queue space (policy `block`)

    if (!batch.empty()) {
      if (!filled) {
        impl.deadline_flushes.fetch_add(1, std::memory_order_relaxed);
      } else if (batch.size() + lapsed.size() >= max_batch) {
        impl.size_flushes.fetch_add(1, std::memory_order_relaxed);
      } else {
        impl.shutdown_flushes.fetch_add(1, std::memory_order_relaxed);
      }
      impl.batches.fetch_add(1, std::memory_order_relaxed);
      impl.batched_items.fetch_add(batch.size(), std::memory_order_relaxed);
      {
        std::lock_guard inflight_lock(impl.inflight_mu);
        ++impl.inflight_batches;
      }
    }
    lock.unlock();
    for (PendingRequest& p : lapsed) {
      impl.expired.fetch_add(1, std::memory_order_relaxed);
      p.promise.set_exception(std::make_exception_ptr(DeadlineExceeded(
          "PredictionService: request deadline passed before a batch slot "
          "was available")));
    }
    if (!batch.empty()) {
      // Fire and forget: Shutdown waits on the inflight counter, not on the
      // discarded future. With zero pool workers Submit runs the batch
      // inline right here, which is the intended width-1 degenerate mode.
      impl.pool.Submit([this, moved = std::make_shared<std::vector<
                                  PendingRequest>>(std::move(batch))]() mutable {
        ProcessBatch(*model_, *cache_, *fallback_, config_, std::move(*moved),
                     *impl_);
      });
    }
    lock.lock();
  }
}

void PredictionService::Shutdown() {
  ServiceImpl& impl = *impl_;
  std::lock_guard shutdown_lock(impl.shutdown_mu);
  if (impl.joined) return;
  {
    std::lock_guard lock(impl.mu);
    impl.stopping = true;
  }
  impl.cv.notify_all();
  impl.space_cv.notify_all();  // blocked producers must wake up and throw
  impl.batcher.join();  // the batcher drains the queue before exiting
  {
    std::unique_lock lock(impl.inflight_mu);
    impl.inflight_cv.wait(lock, [&] { return impl.inflight_batches == 0; });
  }
  impl.joined = true;
}

ServiceStats PredictionService::stats() const {
  const ServiceImpl& impl = *impl_;
  ServiceStats s;
  s.requests = impl.requests.load(std::memory_order_relaxed);
  s.completed = impl.completed.load(std::memory_order_relaxed);
  s.failed = impl.failed.load(std::memory_order_relaxed);
  s.batches = impl.batches.load(std::memory_order_relaxed);
  s.size_flushes = impl.size_flushes.load(std::memory_order_relaxed);
  s.deadline_flushes = impl.deadline_flushes.load(std::memory_order_relaxed);
  s.shutdown_flushes = impl.shutdown_flushes.load(std::memory_order_relaxed);
  s.batched_items = impl.batched_items.load(std::memory_order_relaxed);
  s.plan_hits = impl.plan_hits.load(std::memory_order_relaxed);
  s.plan_misses = impl.plan_misses.load(std::memory_order_relaxed);
  s.plan_compiles = impl.plan_compiles.load(std::memory_order_relaxed);
  s.rejected = impl.rejected.load(std::memory_order_relaxed);
  s.shed = impl.shed.load(std::memory_order_relaxed);
  s.expired = impl.expired.load(std::memory_order_relaxed);
  s.degraded = impl.degraded.load(std::memory_order_relaxed);
  s.breaker_transitions =
      impl.breaker_transitions.load(std::memory_order_relaxed);
  s.reduced_precision_batches =
      impl.reduced_precision_batches.load(std::memory_order_relaxed);
  return s;
}

PredictionService::BreakerState PredictionService::breaker_state() const {
  std::lock_guard lock(impl_->breaker_mu);
  return impl_->breaker_state;
}

}  // namespace tpuperf::serve
