#include "serve/prediction_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/env.h"
#include "core/thread_pool.h"
#include "serve/snapshot.h"

namespace tpuperf::serve {

using Clock = std::chrono::steady_clock;

ServiceConfig ServiceConfig::FromEnv() {
  ServiceConfig c;
  c.max_batch = static_cast<int>(
      core::EnvInt("TPUPERF_SERVE_MAX_BATCH", c.max_batch, 1, 4096));
  c.deadline_us = static_cast<long>(
      core::EnvInt("TPUPERF_SERVE_DEADLINE_US", c.deadline_us, 0, 10000000));
  c.num_threads =
      static_cast<int>(core::EnvInt("TPUPERF_SERVE_THREADS", 0, 0, 4096));
  return c;
}

// One queued prediction. The promise is fulfilled by whichever worker runs
// the batch this request was flushed into.
struct PendingRequest {
  const ir::Graph* kernel = nullptr;
  std::uint64_t fingerprint = 0;
  std::optional<ir::TileConfig> tile;
  std::promise<double> promise;
};

struct ServiceImpl {
  explicit ServiceImpl(int num_threads) : pool(num_threads) {}

  core::ThreadPool pool;

  std::mutex mu;               // guards queue + stopping
  std::condition_variable cv;  // batcher wakeup (new request / shutdown)
  std::deque<PendingRequest> queue;
  bool stopping = false;

  std::mutex inflight_mu;  // guards inflight_batches
  std::condition_variable inflight_cv;
  std::size_t inflight_batches = 0;

  std::mutex shutdown_mu;  // serializes Shutdown callers
  bool joined = false;     // guarded by shutdown_mu
  std::thread batcher;

  // Stats (monotonic; see ServiceStats).
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> size_flushes{0};
  std::atomic<std::uint64_t> deadline_flushes{0};
  std::atomic<std::uint64_t> shutdown_flushes{0};
  std::atomic<std::uint64_t> batched_items{0};
};

namespace {

// Scores one flushed batch and fulfills its promises. A per-request prepare
// failure fails only that request; a model-level failure fails the batch.
void ProcessBatch(const core::LearnedCostModel& model,
                  core::PreparedCache& cache,
                  std::vector<PendingRequest> batch, ServiceImpl& impl) {
  struct InflightGuard {
    ServiceImpl& impl;
    ~InflightGuard() {
      std::lock_guard lock(impl.inflight_mu);
      --impl.inflight_batches;
      impl.inflight_cv.notify_all();
    }
  } guard{impl};

  std::vector<core::BatchItem> items;
  std::vector<PendingRequest*> live;
  items.reserve(batch.size());
  live.reserve(batch.size());
  for (PendingRequest& p : batch) {
    try {
      const core::PreparedKernel& prepared =
          cache.Get(*p.kernel, p.fingerprint);
      items.push_back(core::BatchItem{
          &prepared, p.tile.has_value() ? &*p.tile : nullptr});
      live.push_back(&p);
    } catch (...) {
      impl.failed.fetch_add(1, std::memory_order_relaxed);
      p.promise.set_exception(std::current_exception());
    }
  }
  if (live.empty()) return;

  try {
    const core::PreparedBatch packed = model.PrepareBatch(items);
    const std::vector<double> scores = model.PredictBatch(packed);
    for (std::size_t i = 0; i < live.size(); ++i) {
      live[i]->promise.set_value(scores[i]);
    }
    impl.completed.fetch_add(live.size(), std::memory_order_relaxed);
  } catch (...) {
    impl.failed.fetch_add(live.size(), std::memory_order_relaxed);
    for (PendingRequest* p : live) {
      p->promise.set_exception(std::current_exception());
    }
  }
}

}  // namespace

PredictionService::PredictionService(
    std::unique_ptr<core::LearnedCostModel> model, ServiceConfig config)
    : config_(config), model_(std::move(model)) {
  if (model_ == nullptr) {
    throw std::invalid_argument("PredictionService: null model");
  }
  if (!model_->fitted()) {
    throw std::invalid_argument(
        "PredictionService: model scalers are not fitted (train or load a "
        "snapshot first)");
  }
  if (config_.max_batch < 1) config_.max_batch = 1;
  if (config_.deadline_us < 0) config_.deadline_us = 0;
  cache_ = std::make_unique<core::PreparedCache>(*model_);
  const int threads = config_.num_threads > 0
                          ? config_.num_threads
                          : core::ThreadPool::DefaultNumThreads();
  impl_ = std::make_unique<ServiceImpl>(threads);
  impl_->batcher = std::thread([this] { BatcherLoop(); });
}

PredictionService::PredictionService(const std::string& snapshot_path,
                                     ServiceConfig config)
    : PredictionService(LoadModelSnapshot(snapshot_path), config) {}

PredictionService::~PredictionService() { Shutdown(); }

std::future<double> PredictionService::PredictAsync(
    const ir::Graph& kernel, const ir::TileConfig* tile) {
  PendingRequest p;
  p.kernel = &kernel;
  p.fingerprint = kernel.Fingerprint();
  if (tile != nullptr) p.tile = *tile;
  std::future<double> future = p.promise.get_future();
  {
    std::lock_guard lock(impl_->mu);
    if (impl_->stopping) {
      throw std::runtime_error(
          "PredictionService: PredictAsync after Shutdown");
    }
    impl_->queue.push_back(std::move(p));
  }
  impl_->requests.fetch_add(1, std::memory_order_relaxed);
  impl_->cv.notify_one();
  return future;
}

double PredictionService::Predict(const ir::Graph& kernel,
                                  const ir::TileConfig* tile) {
  return PredictAsync(kernel, tile).get();
}

void PredictionService::BatcherLoop() {
  ServiceImpl& impl = *impl_;
  const auto deadline_budget = std::chrono::microseconds(config_.deadline_us);
  const std::size_t max_batch = static_cast<std::size_t>(config_.max_batch);
  std::unique_lock lock(impl.mu);
  while (true) {
    impl.cv.wait(lock, [&] { return impl.stopping || !impl.queue.empty(); });
    if (impl.queue.empty()) break;  // stopping with nothing left to flush

    // A batch window opens at the first queued request the batcher observes;
    // it closes when the window fills, the deadline passes, or we shut down.
    const auto deadline = Clock::now() + deadline_budget;
    const bool filled = impl.cv.wait_until(lock, deadline, [&] {
      return impl.queue.size() >= max_batch || impl.stopping;
    });

    const std::size_t take = std::min(impl.queue.size(), max_batch);
    std::vector<PendingRequest> batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(impl.queue.front()));
      impl.queue.pop_front();
    }
    if (!filled) {
      impl.deadline_flushes.fetch_add(1, std::memory_order_relaxed);
    } else if (take == max_batch) {
      impl.size_flushes.fetch_add(1, std::memory_order_relaxed);
    } else {
      impl.shutdown_flushes.fetch_add(1, std::memory_order_relaxed);
    }
    impl.batches.fetch_add(1, std::memory_order_relaxed);
    impl.batched_items.fetch_add(take, std::memory_order_relaxed);

    {
      std::lock_guard inflight_lock(impl.inflight_mu);
      ++impl.inflight_batches;
    }
    lock.unlock();
    // Fire and forget: Shutdown waits on the inflight counter, not on the
    // discarded future. With zero pool workers Submit runs the batch inline
    // right here, which is the intended width-1 degenerate mode.
    impl.pool.Submit([this, moved = std::make_shared<std::vector<
                                PendingRequest>>(std::move(batch))]() mutable {
      ProcessBatch(*model_, *cache_, std::move(*moved), *impl_);
    });
    lock.lock();
  }
}

void PredictionService::Shutdown() {
  ServiceImpl& impl = *impl_;
  std::lock_guard shutdown_lock(impl.shutdown_mu);
  if (impl.joined) return;
  {
    std::lock_guard lock(impl.mu);
    impl.stopping = true;
  }
  impl.cv.notify_all();
  impl.batcher.join();  // the batcher drains the queue before exiting
  {
    std::unique_lock lock(impl.inflight_mu);
    impl.inflight_cv.wait(lock, [&] { return impl.inflight_batches == 0; });
  }
  impl.joined = true;
}

ServiceStats PredictionService::stats() const {
  const ServiceImpl& impl = *impl_;
  ServiceStats s;
  s.requests = impl.requests.load(std::memory_order_relaxed);
  s.completed = impl.completed.load(std::memory_order_relaxed);
  s.failed = impl.failed.load(std::memory_order_relaxed);
  s.batches = impl.batches.load(std::memory_order_relaxed);
  s.size_flushes = impl.size_flushes.load(std::memory_order_relaxed);
  s.deadline_flushes = impl.deadline_flushes.load(std::memory_order_relaxed);
  s.shutdown_flushes = impl.shutdown_flushes.load(std::memory_order_relaxed);
  s.batched_items = impl.batched_items.load(std::memory_order_relaxed);
  return s;
}

}  // namespace tpuperf::serve
