#include "serve/prediction_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/env.h"
#include "core/thread_pool.h"
#include "nn/ops.h"
#include "plan/plan.h"
#include "serve/snapshot.h"

namespace tpuperf::serve {

using Clock = std::chrono::steady_clock;

ServiceConfig ServiceConfig::FromEnv() {
  ServiceConfig c;
  c.max_batch = static_cast<int>(
      core::EnvInt("TPUPERF_SERVE_MAX_BATCH", c.max_batch, 1, 4096));
  c.deadline_us = static_cast<long>(
      core::EnvInt("TPUPERF_SERVE_DEADLINE_US", c.deadline_us, 0, 10000000));
  c.num_threads =
      static_cast<int>(core::EnvInt("TPUPERF_SERVE_THREADS", 0, 0, 4096));
  c.plan_enable = static_cast<int>(
      core::EnvInt("TPUPERF_PLAN_ENABLE", c.plan_enable, 0, 1));
  c.plan_cache = static_cast<int>(
      core::EnvInt("TPUPERF_PLAN_CACHE", c.plan_cache, 0, 64));
  return c;
}

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {}

std::pair<int, int> PlanCache::Bucket(int num_kernels, int total_nodes) {
  const auto next_pow2 = [](int v) {
    int p = 1;
    while (p < v) p *= 2;
    return p;
  };
  // node_capacity must cover at least one node per kernel (the planner
  // rejects max_total_nodes < max_kernels).
  const int b = next_pow2(num_kernels < 1 ? 1 : num_kernels);
  const int n = next_pow2(total_nodes < b ? b : total_nodes);
  return {b, n};
}

std::shared_ptr<const plan::CompiledPlan> PlanCache::Lookup(int num_kernels,
                                                            int total_nodes) {
  const std::pair<int, int> bucket = Bucket(num_kernels, total_nodes);
  std::lock_guard lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->bucket == bucket) {
      entries_.splice(entries_.begin(), entries_, it);
      return entries_.front().plan;
    }
  }
  return nullptr;
}

void PlanCache::Insert(int num_kernels, int total_nodes,
                       std::shared_ptr<const plan::CompiledPlan> plan) {
  if (capacity_ == 0) return;
  const std::pair<int, int> bucket = Bucket(num_kernels, total_nodes);
  std::lock_guard lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->bucket == bucket) {
      it->plan = std::move(plan);
      entries_.splice(entries_.begin(), entries_, it);
      return;
    }
  }
  entries_.push_front(Entry{bucket, std::move(plan)});
  while (entries_.size() > capacity_) entries_.pop_back();
}

std::size_t PlanCache::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

// One queued prediction. The promise is fulfilled by whichever worker runs
// the batch this request was flushed into.
struct PendingRequest {
  const ir::Graph* kernel = nullptr;
  std::uint64_t fingerprint = 0;
  std::optional<ir::TileConfig> tile;
  std::promise<double> promise;
};

struct ServiceImpl {
  explicit ServiceImpl(int num_threads) : pool(num_threads) {}

  core::ThreadPool pool;

  // Plan-compiled scoring (null when the plan path is disabled).
  std::unique_ptr<PlanCache> plan_cache;

  std::mutex mu;               // guards queue + stopping
  std::condition_variable cv;  // batcher wakeup (new request / shutdown)
  std::deque<PendingRequest> queue;
  bool stopping = false;

  std::mutex inflight_mu;  // guards inflight_batches
  std::condition_variable inflight_cv;
  std::size_t inflight_batches = 0;

  std::mutex shutdown_mu;  // serializes Shutdown callers
  bool joined = false;     // guarded by shutdown_mu
  std::thread batcher;

  // Stats (monotonic; see ServiceStats).
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> size_flushes{0};
  std::atomic<std::uint64_t> deadline_flushes{0};
  std::atomic<std::uint64_t> shutdown_flushes{0};
  std::atomic<std::uint64_t> batched_items{0};
  std::atomic<std::uint64_t> plan_hits{0};
  std::atomic<std::uint64_t> plan_misses{0};
  std::atomic<std::uint64_t> plan_compiles{0};
};

namespace {

// Scores a packed batch, preferring a cached compiled plan (compiling one
// for the batch's shape bucket on a miss). Any plan-path failure — a model
// configuration the planner rejects, fused ops disabled — falls back to the
// tape path, which is always available; the two paths are bit-identical.
std::vector<double> ScorePacked(const core::LearnedCostModel& model,
                                const core::PreparedBatch& packed,
                                ServiceImpl& impl) {
  if (impl.plan_cache != nullptr && nn::FusedOpsEnabled()) {
    const int b = packed.num_kernels();
    const int n = packed.total_nodes();
    std::shared_ptr<const plan::CompiledPlan> plan =
        impl.plan_cache->Lookup(b, n);
    if (plan != nullptr) {
      impl.plan_hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      impl.plan_misses.fetch_add(1, std::memory_order_relaxed);
      const std::pair<int, int> bucket = PlanCache::Bucket(b, n);
      try {
        plan = model.CompilePlan(bucket.first, bucket.second);
        impl.plan_cache->Insert(b, n, plan);
        impl.plan_compiles.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        plan = nullptr;  // fall through to the tape path
      }
    }
    if (plan != nullptr) return model.PredictBatchWithPlan(*plan, packed);
  }
  return model.PredictBatch(packed);
}

// Scores one flushed batch and fulfills its promises. A per-request prepare
// failure fails only that request; a model-level failure fails the batch.
void ProcessBatch(const core::LearnedCostModel& model,
                  core::PreparedCache& cache,
                  std::vector<PendingRequest> batch, ServiceImpl& impl) {
  struct InflightGuard {
    ServiceImpl& impl;
    ~InflightGuard() {
      std::lock_guard lock(impl.inflight_mu);
      --impl.inflight_batches;
      impl.inflight_cv.notify_all();
    }
  } guard{impl};

  std::vector<core::BatchItem> items;
  std::vector<PendingRequest*> live;
  items.reserve(batch.size());
  live.reserve(batch.size());
  for (PendingRequest& p : batch) {
    try {
      const core::PreparedKernel& prepared =
          cache.Get(*p.kernel, p.fingerprint);
      items.push_back(core::BatchItem{
          &prepared, p.tile.has_value() ? &*p.tile : nullptr});
      live.push_back(&p);
    } catch (...) {
      impl.failed.fetch_add(1, std::memory_order_relaxed);
      p.promise.set_exception(std::current_exception());
    }
  }
  if (live.empty()) return;

  try {
    const core::PreparedBatch packed = model.PrepareBatch(items);
    const std::vector<double> scores = ScorePacked(model, packed, impl);
    for (std::size_t i = 0; i < live.size(); ++i) {
      live[i]->promise.set_value(scores[i]);
    }
    impl.completed.fetch_add(live.size(), std::memory_order_relaxed);
  } catch (...) {
    impl.failed.fetch_add(live.size(), std::memory_order_relaxed);
    for (PendingRequest* p : live) {
      p->promise.set_exception(std::current_exception());
    }
  }
}

}  // namespace

PredictionService::PredictionService(
    std::unique_ptr<core::LearnedCostModel> model, ServiceConfig config)
    : config_(config), model_(std::move(model)) {
  if (model_ == nullptr) {
    throw std::invalid_argument("PredictionService: null model");
  }
  if (!model_->fitted()) {
    throw std::invalid_argument(
        "PredictionService: model scalers are not fitted (train or load a "
        "snapshot first)");
  }
  if (config_.max_batch < 1) config_.max_batch = 1;
  if (config_.deadline_us < 0) config_.deadline_us = 0;
  cache_ = std::make_unique<core::PreparedCache>(*model_);
  const int threads = config_.num_threads > 0
                          ? config_.num_threads
                          : core::ThreadPool::DefaultNumThreads();
  impl_ = std::make_unique<ServiceImpl>(threads);
  if (config_.plan_enable != 0 && config_.plan_cache > 0) {
    impl_->plan_cache =
        std::make_unique<PlanCache>(static_cast<std::size_t>(config_.plan_cache));
  }
  impl_->batcher = std::thread([this] { BatcherLoop(); });
}

PredictionService::PredictionService(const std::string& snapshot_path,
                                     ServiceConfig config)
    : PredictionService(LoadModelSnapshot(snapshot_path), config) {}

PredictionService::~PredictionService() { Shutdown(); }

std::future<double> PredictionService::PredictAsync(
    const ir::Graph& kernel, const ir::TileConfig* tile) {
  PendingRequest p;
  p.kernel = &kernel;
  p.fingerprint = kernel.Fingerprint();
  if (tile != nullptr) p.tile = *tile;
  std::future<double> future = p.promise.get_future();
  {
    std::lock_guard lock(impl_->mu);
    if (impl_->stopping) {
      throw std::runtime_error(
          "PredictionService: PredictAsync after Shutdown");
    }
    impl_->queue.push_back(std::move(p));
  }
  impl_->requests.fetch_add(1, std::memory_order_relaxed);
  impl_->cv.notify_one();
  return future;
}

double PredictionService::Predict(const ir::Graph& kernel,
                                  const ir::TileConfig* tile) {
  return PredictAsync(kernel, tile).get();
}

void PredictionService::BatcherLoop() {
  ServiceImpl& impl = *impl_;
  const auto deadline_budget = std::chrono::microseconds(config_.deadline_us);
  const std::size_t max_batch = static_cast<std::size_t>(config_.max_batch);
  std::unique_lock lock(impl.mu);
  while (true) {
    impl.cv.wait(lock, [&] { return impl.stopping || !impl.queue.empty(); });
    if (impl.queue.empty()) break;  // stopping with nothing left to flush

    // A batch window opens at the first queued request the batcher observes;
    // it closes when the window fills, the deadline passes, or we shut down.
    const auto deadline = Clock::now() + deadline_budget;
    const bool filled = impl.cv.wait_until(lock, deadline, [&] {
      return impl.queue.size() >= max_batch || impl.stopping;
    });

    const std::size_t take = std::min(impl.queue.size(), max_batch);
    std::vector<PendingRequest> batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(impl.queue.front()));
      impl.queue.pop_front();
    }
    if (!filled) {
      impl.deadline_flushes.fetch_add(1, std::memory_order_relaxed);
    } else if (take == max_batch) {
      impl.size_flushes.fetch_add(1, std::memory_order_relaxed);
    } else {
      impl.shutdown_flushes.fetch_add(1, std::memory_order_relaxed);
    }
    impl.batches.fetch_add(1, std::memory_order_relaxed);
    impl.batched_items.fetch_add(take, std::memory_order_relaxed);

    {
      std::lock_guard inflight_lock(impl.inflight_mu);
      ++impl.inflight_batches;
    }
    lock.unlock();
    // Fire and forget: Shutdown waits on the inflight counter, not on the
    // discarded future. With zero pool workers Submit runs the batch inline
    // right here, which is the intended width-1 degenerate mode.
    impl.pool.Submit([this, moved = std::make_shared<std::vector<
                                PendingRequest>>(std::move(batch))]() mutable {
      ProcessBatch(*model_, *cache_, std::move(*moved), *impl_);
    });
    lock.lock();
  }
}

void PredictionService::Shutdown() {
  ServiceImpl& impl = *impl_;
  std::lock_guard shutdown_lock(impl.shutdown_mu);
  if (impl.joined) return;
  {
    std::lock_guard lock(impl.mu);
    impl.stopping = true;
  }
  impl.cv.notify_all();
  impl.batcher.join();  // the batcher drains the queue before exiting
  {
    std::unique_lock lock(impl.inflight_mu);
    impl.inflight_cv.wait(lock, [&] { return impl.inflight_batches == 0; });
  }
  impl.joined = true;
}

ServiceStats PredictionService::stats() const {
  const ServiceImpl& impl = *impl_;
  ServiceStats s;
  s.requests = impl.requests.load(std::memory_order_relaxed);
  s.completed = impl.completed.load(std::memory_order_relaxed);
  s.failed = impl.failed.load(std::memory_order_relaxed);
  s.batches = impl.batches.load(std::memory_order_relaxed);
  s.size_flushes = impl.size_flushes.load(std::memory_order_relaxed);
  s.deadline_flushes = impl.deadline_flushes.load(std::memory_order_relaxed);
  s.shutdown_flushes = impl.shutdown_flushes.load(std::memory_order_relaxed);
  s.batched_items = impl.batched_items.load(std::memory_order_relaxed);
  s.plan_hits = impl.plan_hits.load(std::memory_order_relaxed);
  s.plan_misses = impl.plan_misses.load(std::memory_order_relaxed);
  s.plan_compiles = impl.plan_compiles.load(std::memory_order_relaxed);
  return s;
}

}  // namespace tpuperf::serve
