/// \file
/// A long-lived prediction engine with adaptive micro-batching (ROADMAP
/// "serving engine").
///
/// The paper's deployment target is a compiler autotuner issuing large
/// volleys of cost queries (§5.3); production model servers (TF-Serving,
/// Triton) face the same shape of load and answer it the same way this
/// service does: coalesce concurrent single predictions into one batched
/// forward pass, because PredictBatch amortizes every dense layer into one
/// large GEMM (bench_batch measures the per-item speedup).
///
/// ## Batching policy
///
/// Requests enter a queue; a dedicated batcher thread drains it into
/// LearnedCostModel::PredictBatch calls. A batch is flushed when EITHER
///   * size trigger   — max_batch requests are waiting (default 64, the
///     packed-batch sweet spot the autotuner evaluators also use), or
///   * deadline trigger — deadline_us elapsed since the oldest queued
///     request was observed (bounds added latency under light load; 0
///     flushes immediately, degenerating to per-request batches), or
///   * shutdown — Shutdown() drains whatever is queued.
/// Flushed batches are handed to an owned core::ThreadPool, so a slow batch
/// never blocks the batcher from accumulating the next one.
///
/// ## Semantics
///
/// Results are EXACTLY the scores PredictScore would return for the same
/// (kernel, tile) — batching is a throughput optimization, never an accuracy
/// trade (tests/serve_test.cpp asserts bit-equality). Kernels are prepared
/// through a shared core::PreparedCache, so duplicate kernels across
/// requests featurize once, and a registered dataset-store feature source is
/// honored. Per-request failures (a throwing featurization) fail that
/// request's future; other requests in the same batch complete normally.
///
/// The caller's Graph must stay alive until its future resolves (the service
/// featurizes lazily, on the batcher/worker side); tile configs are copied.
///
/// ## Failure model (docs/ARCHITECTURE.md "Failure model")
///
/// The queue is bounded (`queue_cap`); a full queue applies the configured
/// OverloadPolicy: `reject` throws OverloadedError from PredictAsync,
/// `block` waits for space (backpressure), `shed_oldest` fails the oldest
/// queued request's future with OverloadedError and accepts the new one.
/// Requests carry deadlines (PredictOptions::deadline, or the
/// `request_timeout_us` default); the batcher fails expired requests with
/// DeadlineExceeded at dequeue, before they burn a batch slot. A circuit
/// breaker watches model-level batch failures: after `breaker_failures`
/// consecutive ones it opens and requests are answered by the analytical
/// cost model (src/analytical) instead — tagged `PredictResult::degraded`,
/// deterministic, on the analytical scale (only comparable to other
/// degraded answers) — until a half-open probe batch succeeds against the
/// learned model again.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "analytical/analytical_model.h"
#include "core/cost_model.h"
#include "core/trainer.h"
#include "ir/graph.h"
#include "ir/tile.h"

namespace tpuperf::plan {
class CompiledPlan;
}  // namespace tpuperf::plan

namespace tpuperf::serve {

struct ServiceImpl;  // queue/pool/stats plumbing, defined in the .cpp

/// Thrown by PredictAsync (policy `reject`) and set on shed futures (policy
/// `shed_oldest`) when the bounded queue is full.
class OverloadedError : public std::runtime_error {
 public:
  explicit OverloadedError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Set on a request's future when its deadline passed before a batch slot
/// was available (checked at dequeue).
class DeadlineExceeded : public std::runtime_error {
 public:
  explicit DeadlineExceeded(const std::string& what)
      : std::runtime_error(what) {}
};

/// What a full queue does to the next arrival.
enum class OverloadPolicy {
  kReject = 0,     // PredictAsync throws OverloadedError (fail fast)
  kBlock = 1,      // PredictAsync blocks until space frees (backpressure)
  kShedOldest = 2  // oldest queued future fails; the new request is accepted
};

/// Per-request knobs for PredictAsync.
struct PredictOptions {
  /// Absolute deadline; unset applies ServiceConfig::request_timeout_us
  /// (0 there = no deadline).
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// One served answer. `degraded` answers come from the analytical fallback
/// (breaker open) and are on its scale, NOT the learned model's — callers
/// that cannot use a coarse estimate should treat them as soft failures.
struct PredictResult {
  double value = 0.0;
  bool degraded = false;
};

/// Service knobs. Every field has a TPUPERF_SERVE_* environment override
/// (strict integer parse via core::EnvInt, token parse via core::EnvEnum;
/// malformed values warn and keep the default).
struct ServiceConfig {
  // Size trigger: flush when this many requests are waiting.
  // Env: TPUPERF_SERVE_MAX_BATCH.
  int max_batch = 64;
  // Deadline trigger: flush at most this long (microseconds) after the
  // oldest queued request was seen. Env: TPUPERF_SERVE_DEADLINE_US.
  long deadline_us = 200;
  // Worker threads processing flushed batches; 0 means
  // core::ThreadPool::DefaultNumThreads(). Env: TPUPERF_SERVE_THREADS.
  int num_threads = 0;
  // Plan-compiled inference (src/plan): when nonzero, flushed batches are
  // scored through a cached CompiledPlan (compiled once per batch-shape
  // bucket, replayed thereafter) instead of building a tape per batch.
  // Results are bit-identical either way. Env: TPUPERF_PLAN_ENABLE (0 or 1).
  int plan_enable = 1;
  // Capacity of the per-service plan cache, in distinct batch-shape buckets
  // (LRU beyond that); 0 also disables the plan path. Env: TPUPERF_PLAN_CACHE.
  int plan_cache = 8;
  // Admission control: queued-request cap (0 = unbounded, the pre-robustness
  // behavior). Env: TPUPERF_SERVE_QUEUE_CAP.
  int queue_cap = 4096;
  // What a full queue does to the next arrival.
  // Env: TPUPERF_SERVE_OVERLOAD_POLICY = reject | block | shed_oldest.
  OverloadPolicy overload_policy = OverloadPolicy::kReject;
  // Default per-request deadline, microseconds from enqueue (0 = none);
  // PredictOptions::deadline overrides per request.
  // Env: TPUPERF_SERVE_REQUEST_TIMEOUT_US.
  long request_timeout_us = 0;
  // Circuit breaker: consecutive model-level batch failures that open it
  // (0 disables the breaker — failures keep failing futures).
  // Env: TPUPERF_SERVE_BREAKER_FAILURES.
  int breaker_failures = 3;
  // How long an open breaker degrades before probing the model again.
  // Env: TPUPERF_SERVE_BREAKER_COOLDOWN_US.
  long breaker_cooldown_us = 50000;
  // Inference precision (nn/quant.h): the service applies
  // model->SetPrecision(precision) at construction, so every served score
  // runs the reduced-precision path. Under a reduced precision, batched
  // scores match the quantized model's own PredictScore within the
  // documented quantization tolerance (the f32 bit-exactness contract
  // applies only at kFloat32 — batching can change the sparse/dense
  // routing verdicts of the quantized GEMMs).
  // Env: TPUPERF_PRECISION = f32 | int8 | fp16 (shared with the
  // non-serving paths, read via nn::PrecisionFromEnv).
  nn::Precision precision = nn::Precision::kFloat32;

  static ServiceConfig FromEnv();
};

/// An LRU cache of compiled plans keyed by batch-shape bucket. Shapes are
/// bucketed to the next power of two in both dimensions (batch size and
/// packed node count) so nearby batch shapes share one plan — a plan compiled
/// for capacity (2^a, 2^b) replays any batch at or under that capacity.
/// Thread-safe; standalone so tests can exercise eviction directly.
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity);

  /// The bucket (plan capacity) covering a concrete batch shape.
  static std::pair<int, int> Bucket(int num_kernels, int total_nodes);

  /// The cached plan whose bucket covers (num_kernels, total_nodes), or null.
  /// A hit refreshes the entry's LRU position.
  std::shared_ptr<const plan::CompiledPlan> Lookup(int num_kernels,
                                                   int total_nodes);
  /// Inserts a plan under Bucket(num_kernels, total_nodes), evicting the
  /// least-recently-used entry when the cache is full.
  void Insert(int num_kernels, int total_nodes,
              std::shared_ptr<const plan::CompiledPlan> plan);

  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    std::pair<int, int> bucket;
    std::shared_ptr<const plan::CompiledPlan> plan;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> entries_;  // front = most recently used
};

/// Monotonic counters, readable at any time (atomics; a snapshot is not a
/// consistent cut but every counter is exact once the service is idle).
struct ServiceStats {
  // Every accepted request resolves exactly one way:
  //   requests == completed + failed + shed + expired   (once idle)
  // with `degraded` a subset of `completed` and `rejected` never accepted.
  std::uint64_t requests = 0;          // accepted by PredictAsync
  std::uint64_t completed = 0;         // futures resolved with a value
  std::uint64_t failed = 0;            // futures resolved with a model or
                                       // featurization error
  std::uint64_t batches = 0;           // PredictBatch calls issued
  std::uint64_t size_flushes = 0;      // flushed because max_batch waiting
  std::uint64_t deadline_flushes = 0;  // flushed because deadline_us elapsed
  std::uint64_t shutdown_flushes = 0;  // flushed by Shutdown() draining
  std::uint64_t batched_items = 0;     // requests summed over all batches
  std::uint64_t plan_hits = 0;         // batches scored via a cached plan
  std::uint64_t plan_misses = 0;       // batches whose bucket had no plan yet
  std::uint64_t plan_compiles = 0;     // CompilePlan calls (== misses unless
                                       // a compile failed and fell back)
  std::uint64_t rejected = 0;          // PredictAsync threw OverloadedError
                                       // (never counted in `requests`)
  std::uint64_t shed = 0;              // accepted, then failed by shed_oldest
  std::uint64_t expired = 0;           // failed with DeadlineExceeded
  std::uint64_t degraded = 0;          // analytical-fallback answers (these
                                       // also count in `completed`)
  std::uint64_t breaker_transitions = 0;  // every breaker state change
  std::uint64_t reduced_precision_batches = 0;  // batches scored while the
                                       // model ran at a reduced precision
                                       // (subset of `batches`)

  double mean_batch_size() const noexcept {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_items) /
                              static_cast<double>(batches);
  }
};

class PredictionService {
 public:
  /// Serves a trained (fitted) model. Throws std::invalid_argument when the
  /// model's scalers were never fitted (it could not predict anything).
  explicit PredictionService(std::unique_ptr<core::LearnedCostModel> model,
                             ServiceConfig config = {});
  /// Constructs the whole engine from one snapshot file
  /// (serve::SaveModelSnapshot), retrying transient load failures with
  /// bounded backoff (LoadModelSnapshotWithRetry). Throws data::StoreError
  /// when the final attempt still fails.
  explicit PredictionService(const std::string& snapshot_path,
                             ServiceConfig config = {});
  /// Drains and stops (equivalent to Shutdown()).
  ~PredictionService();
  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Breaker states (see the failure model above). Exposed for tests and
  /// monitoring; transitions are counted in ServiceStats.
  enum class BreakerState { kClosed, kOpen, kHalfOpen };

  /// Enqueues one prediction; the future resolves with PredictScore's value
  /// for (kernel, tile) once a batch containing it completes — or with a
  /// tagged degraded analytical estimate while the breaker is open, or
  /// exceptionally (OverloadedError when shed, DeadlineExceeded when
  /// expired, the model's error otherwise). Throws std::runtime_error after
  /// Shutdown() and OverloadedError when full under policy `reject`; blocks
  /// when full under policy `block`. `tile` may be null; it is copied.
  std::future<PredictResult> PredictAsync(const ir::Graph& kernel,
                                          const ir::TileConfig* tile = nullptr,
                                          PredictOptions options = {});

  /// Synchronous convenience wrapper: PredictAsync(...).get().value.
  double Predict(const ir::Graph& kernel,
                 const ir::TileConfig* tile = nullptr);

  /// Stops accepting requests, flushes every queued request, waits for all
  /// in-flight batches, and joins the batcher. Every future issued before
  /// the call resolves. Idempotent; called by the destructor.
  void Shutdown();

  ServiceStats stats() const;
  BreakerState breaker_state() const;
  const ServiceConfig& config() const noexcept { return config_; }
  const core::LearnedCostModel& model() const noexcept { return *model_; }
  /// The shared prepare cache (exposed for tests and cache-warming).
  core::PreparedCache& prepared_cache() noexcept { return *cache_; }

 private:
  void BatcherLoop();

  ServiceConfig config_;
  std::unique_ptr<core::LearnedCostModel> model_;
  std::unique_ptr<core::PreparedCache> cache_;
  std::unique_ptr<analytical::AnalyticalModel> fallback_;
  std::unique_ptr<ServiceImpl> impl_;
};

}  // namespace tpuperf::serve
