#include "serve/snapshot.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "core/fault_injection.h"
#include "dataset/store.h"
#include "dataset/wire.h"

namespace tpuperf::serve {
namespace {

using core::FeaturePlacement;
using core::GnnKind;
using core::LossKind;
using core::ModelConfig;
using core::ReductionKind;
using data::Dec;
using data::Enc;
using data::StoreError;

std::string EncodeConfigPayload(const ModelConfig& c) {
  Enc e;
  e.U8(static_cast<std::uint8_t>(c.gnn));
  e.U8(static_cast<std::uint8_t>(c.reduction));
  e.U8(c.directed_edges ? 1 : 0);
  e.U8(c.use_static_perf ? 1 : 0);
  e.U8(static_cast<std::uint8_t>(c.static_perf_placement));
  e.U8(c.use_tile_features ? 1 : 0);
  e.U8(static_cast<std::uint8_t>(c.tile_placement));
  e.I32(c.opcode_embedding_dim);
  e.I32(c.hidden_dim);
  e.I32(c.gnn_layers);
  e.I32(c.node_final_layers);
  e.I32(c.transformer_layers);
  e.I32(c.transformer_heads);
  e.I32(c.gat_heads);
  e.F32(c.dropout);
  e.U8(static_cast<std::uint8_t>(c.loss));
  e.U8(c.log_target ? 1 : 0);
  e.F64(c.learning_rate);
  e.F64(c.lr_decay);
  e.U8(static_cast<std::uint8_t>(c.grad_clip));
  e.F64(c.grad_clip_norm);
  e.I32(c.train_steps);
  e.I32(c.configs_per_batch);
  e.I32(c.kernels_per_batch);
  e.U64(c.seed);
  return e.bytes();
}

std::uint8_t DecodeEnum(Dec& d, std::uint8_t max_value, const char* what) {
  const std::uint8_t v = d.U8();
  if (v > max_value) {
    d.Fail(std::string("invalid ") + what + " value " + std::to_string(v));
  }
  return v;
}

ModelConfig DecodeConfigPayload(Dec& d) {
  ModelConfig c;
  c.gnn = static_cast<GnnKind>(
      DecodeEnum(d, static_cast<std::uint8_t>(GnnKind::kGat), "gnn kind"));
  c.reduction = static_cast<ReductionKind>(DecodeEnum(
      d, static_cast<std::uint8_t>(ReductionKind::kTransformer), "reduction"));
  c.directed_edges = d.U8() != 0;
  c.use_static_perf = d.U8() != 0;
  c.static_perf_placement = static_cast<FeaturePlacement>(DecodeEnum(
      d, static_cast<std::uint8_t>(FeaturePlacement::kKernelEmbedding),
      "static-perf placement"));
  c.use_tile_features = d.U8() != 0;
  c.tile_placement = static_cast<FeaturePlacement>(DecodeEnum(
      d, static_cast<std::uint8_t>(FeaturePlacement::kKernelEmbedding),
      "tile placement"));
  c.opcode_embedding_dim = d.I32();
  c.hidden_dim = d.I32();
  c.gnn_layers = d.I32();
  c.node_final_layers = d.I32();
  c.transformer_layers = d.I32();
  c.transformer_heads = d.I32();
  c.gat_heads = d.I32();
  c.dropout = d.F32();
  c.loss = static_cast<LossKind>(
      DecodeEnum(d, static_cast<std::uint8_t>(LossKind::kMse), "loss kind"));
  c.log_target = d.U8() != 0;
  c.learning_rate = d.F64();
  c.lr_decay = d.F64();
  c.grad_clip = static_cast<nn::GradClip>(DecodeEnum(
      d, static_cast<std::uint8_t>(nn::GradClip::kNorm), "grad-clip kind"));
  c.grad_clip_norm = d.F64();
  c.train_steps = d.I32();
  c.configs_per_batch = d.I32();
  c.kernels_per_batch = d.I32();
  c.seed = d.U64();
  if (c.hidden_dim <= 0 || c.hidden_dim > 65536 ||
      c.opcode_embedding_dim <= 0 || c.opcode_embedding_dim > 65536) {
    d.Fail("implausible model dimensions (corrupt snapshot)");
  }
  return c;
}

}  // namespace

void SaveModelSnapshot(const std::string& path,
                       const core::LearnedCostModel& model) {
  std::ostringstream params;
  model.Save(params);
  data::DatasetWriter writer(path);
  writer.AddRaw(data::kModelConfigRecordType,
                EncodeConfigPayload(model.config()));
  writer.AddRaw(data::kModelParamsRecordType, params.str());
  writer.Finish();
}

std::unique_ptr<core::LearnedCostModel> LoadModelSnapshot(
    const std::string& path) {
  // Models a transient load failure (publish race, flaky filesystem) — the
  // retrying loader below must absorb it.
  if (core::FaultPointFires("snapshot.load_fail")) {
    throw StoreError(path +
                     ": injected transient load failure (fault point "
                     "snapshot.load_fail)");
  }
  data::DatasetReader reader(path);
  std::optional<ModelConfig> config;
  std::unique_ptr<core::LearnedCostModel> model;
  reader.ForEachRecord([&](const data::RecordView& record) {
    Dec d(record.payload.data(), record.payload.size(), record.context);
    switch (record.type) {
      case data::kModelConfigRecordType:
        config = DecodeConfigPayload(d);
        if (!d.AtEnd()) d.Fail("trailing bytes inside config record");
        break;
      case data::kModelParamsRecordType: {
        if (!config.has_value()) {
          throw StoreError(record.context +
                           ": parameter record precedes the config record "
                           "(malformed snapshot)");
        }
        model = std::make_unique<core::LearnedCostModel>(*config);
        std::istringstream is(std::string(
            reinterpret_cast<const char*>(record.payload.data()),
            record.payload.size()));
        try {
          model->Load(is);
        } catch (const std::exception& e) {
          throw StoreError(record.context + ": " + e.what());
        }
        break;
      }
      default:
        throw StoreError(record.context + ": record type " +
                         std::to_string(record.type) +
                         " does not belong in a model snapshot");
    }
  });
  if (model == nullptr) {
    throw StoreError(path + ": no model parameter record (not a snapshot?)");
  }
  return model;
}

std::unique_ptr<core::LearnedCostModel> LoadModelSnapshotWithRetry(
    const std::string& path, int max_attempts,
    std::chrono::microseconds initial_backoff) {
  max_attempts = std::max(1, max_attempts);
  std::chrono::microseconds backoff =
      std::max(initial_backoff, std::chrono::microseconds(0));
  constexpr std::chrono::microseconds kMaxBackoff(100000);
  for (int attempt = 1;; ++attempt) {
    try {
      return LoadModelSnapshot(path);
    } catch (const StoreError&) {
      if (attempt >= max_attempts) throw;
    }
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, kMaxBackoff);
  }
}

}  // namespace tpuperf::serve
