#include "autotuner/fusion_tuner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace tpuperf::tune {
namespace {

// Per-Tune cache of compiler tile choices, keyed by kernel fingerprint —
// fusion configs of one program share most of their kernels.
class TileChoiceCache {
 public:
  TileChoiceCache(const sim::TpuSimulator& simulator,
                  const analytical::AnalyticalModel& analytical)
      : simulator_(simulator), analytical_(analytical) {}

  const ir::TileConfig& Get(const ir::Graph& kernel, std::uint64_t fp) {
    const auto it = cache_.find(fp);
    if (it != cache_.end()) return it->second;
    return cache_
        .emplace(fp, data::CompilerDefaultTile(kernel, simulator_, analytical_))
        .first->second;
  }

 private:
  const sim::TpuSimulator& simulator_;
  const analytical::AnalyticalModel& analytical_;
  std::unordered_map<std::uint64_t, ir::TileConfig> cache_;
};

double SumConfigCost(const ir::Program& program, const data::EdgeList& edges,
                     const data::FusionConfig& config, CostEvaluator& evaluator,
                     TileChoiceCache& tiles) {
  const auto kernels = data::ApplyFusion(program.graph, edges, config);
  // All kernels of the candidate config are scored in one batched call
  // (the learned evaluator packs them into a single forward pass).
  std::vector<KernelTileRef> refs;
  refs.reserve(kernels.size());
  for (const ir::Kernel& kernel : kernels) {
    const std::uint64_t fp = kernel.graph.Fingerprint();
    refs.push_back({&kernel.graph, &tiles.Get(kernel.graph, fp)});
  }
  const auto costs = evaluator.EstimateBatch(refs);
  double total = 0;
  for (const auto& cost : costs) {
    if (cost.has_value()) total += *cost;
    // Kernels the evaluator cannot score contribute nothing; only the
    // analytical evaluator on data-formatting kernels hits this (§7.3 notes
    // the analytical model is unusable as a fusion guide for this reason).
  }
  return total;
}

}  // namespace

double FusionAutotuner::ConfigCost(const ir::Program& program,
                                   const data::EdgeList& edges,
                                   const data::FusionConfig& config,
                                   CostEvaluator& evaluator) const {
  TileChoiceCache tiles(simulator_, analytical_);
  return SumConfigCost(program, edges, config, evaluator, tiles);
}

double FusionAutotuner::TrueRuntime(const ir::Program& program,
                                    const data::EdgeList& edges,
                                    const data::FusionConfig& config) const {
  TileChoiceCache tiles(simulator_, analytical_);
  const auto kernels = data::ApplyFusion(program.graph, edges, config);
  double total = 0;
  for (const ir::Kernel& kernel : kernels) {
    const std::uint64_t fp = kernel.graph.Fingerprint();
    total += simulator_.Measure(kernel.graph, tiles.Get(kernel.graph, fp));
  }
  return total;
}

FusionTuneResult FusionAutotuner::TuneWithHardware(
    const ir::Program& program, const FusionTuneOptions& options) const {
  FusionTuneResult result;
  result.program = program.name;
  std::mt19937_64 rng(options.seed);

  const data::EdgeList edges = data::EdgeList::FromGraph(program.graph);
  const data::FusionConfig default_config =
      data::DefaultFusion(program.graph, edges);
  result.default_runtime_sec = TrueRuntime(program, edges, default_config);

  data::FusionConfig current =
      options.start_from_default
          ? default_config
          : data::RandomFusion(program.graph, edges, rng, 0.5);

  HardwareEvaluator hardware(simulator_);
  TileChoiceCache tiles(simulator_, analytical_);
  double current_cost =
      SumConfigCost(program, edges, current, hardware, tiles);
  data::FusionConfig best = current;
  double best_cost = current_cost;
  result.configs_explored = 1;

  double temperature = options.initial_temperature;
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int step = 0; step < options.max_steps &&
                     hardware.SpentSeconds() < options.hardware_budget_sec;
       ++step) {
    const auto next = data::FlipOneEdge(program.graph, edges, current, rng);
    temperature *= options.cooling;
    if (!next.has_value()) continue;
    const double next_cost =
        SumConfigCost(program, edges, *next, hardware, tiles);
    ++result.configs_explored;
    const double relative = (next_cost - current_cost) /
                            std::max(current_cost, 1e-12);
    if (next_cost <= current_cost ||
        unit(rng) < std::exp(-relative / std::max(temperature, 1e-6))) {
      current = *next;
      current_cost = next_cost;
      if (current_cost < best_cost) {
        best = current;
        best_cost = current_cost;
      }
    }
  }
  result.hardware_seconds = hardware.SpentSeconds();
  result.best_runtime_sec = TrueRuntime(program, edges, best);
  if (options.start_from_default) {
    // The compiler falls back to its default when search finds nothing
    // better; from a random start the search result stands on its own
    // (§7.3's random-start comparison).
    result.best_runtime_sec =
        std::min(result.best_runtime_sec, result.default_runtime_sec);
  }
  return result;
}

FusionTuneResult FusionAutotuner::TuneWithModel(
    const ir::Program& program, CostEvaluator& model,
    const FusionTuneOptions& options) const {
  FusionTuneResult result;
  result.program = program.name;
  std::mt19937_64 rng(options.seed);

  const data::EdgeList edges = data::EdgeList::FromGraph(program.graph);
  const data::FusionConfig default_config =
      data::DefaultFusion(program.graph, edges);
  result.default_runtime_sec = TrueRuntime(program, edges, default_config);

  data::FusionConfig current =
      options.start_from_default
          ? default_config
          : data::RandomFusion(program.graph, edges, rng, 0.5);

  // ---- Phase 1: anneal on the cost model (CPU) ----------------------------
  TileChoiceCache tiles(simulator_, analytical_);
  const double model_start = model.SpentSeconds();
  double current_cost = SumConfigCost(program, edges, current, model, tiles);
  // Best-first pool of distinct candidates, keyed by predicted cost.
  std::multimap<double, data::FusionConfig> pool;
  std::unordered_map<std::uint64_t, bool> pooled;
  const auto offer = [&](double cost, const data::FusionConfig& config) {
    if (!pooled.emplace(config.Fingerprint(), true).second) return;
    pool.emplace(cost, config);
    while (static_cast<int>(pool.size()) > options.validate_top) {
      pool.erase(std::prev(pool.end()));
    }
  };
  offer(current_cost, current);

  double temperature = options.initial_temperature;
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int step = 0;
       step < options.max_steps &&
       model.SpentSeconds() - model_start < options.model_budget_sec;
       ++step) {
    const auto next = data::FlipOneEdge(program.graph, edges, current, rng);
    temperature *= options.cooling;
    if (!next.has_value()) continue;
    const double next_cost = SumConfigCost(program, edges, *next, model, tiles);
    ++result.configs_explored;
    offer(next_cost, *next);
    const double relative = (next_cost - current_cost) /
                            std::max(current_cost, 1e-12);
    if (next_cost <= current_cost ||
        unit(rng) < std::exp(-relative / std::max(temperature, 1e-6))) {
      current = *next;
      current_cost = next_cost;
    }
  }

  // ---- Phase 2: validate promising configs on hardware, in ranked order ---
  HardwareEvaluator hardware(simulator_);
  double best_true = std::numeric_limits<double>::infinity();
  for (const auto& [predicted, config] : pool) {
    if (hardware.SpentSeconds() >= options.hardware_budget_sec) break;
    TileChoiceCache vtiles(simulator_, analytical_);
    const double true_cost =
        SumConfigCost(program, edges, config, hardware, vtiles);
    best_true = std::min(best_true, true_cost);
  }
  if (options.start_from_default || !std::isfinite(best_true)) {
    best_true = std::min(best_true, result.default_runtime_sec);
  }
  result.hardware_seconds = hardware.SpentSeconds();
  result.best_runtime_sec = best_true;
  return result;
}

}  // namespace tpuperf::tune
