#include "autotuner/evaluators.h"

#include "sim/hash.h"

namespace tpuperf::tune {
namespace {

std::uint64_t KernelTileKey(const ir::Graph& kernel,
                            const ir::TileConfig& tile) {
  std::uint64_t h = kernel.Fingerprint();
  for (const auto d : tile.dims) {
    h = sim::HashCombine(h, static_cast<std::uint64_t>(d));
  }
  return h;
}

}  // namespace

std::optional<double> HardwareEvaluator::EstimateKernel(
    const ir::Graph& kernel, const ir::TileConfig& tile) {
  const std::uint64_t fp = kernel.Fingerprint();
  if (compiled_.emplace(fp, true).second) spent_ += costs_.compile_sec;

  const std::uint64_t key = KernelTileKey(kernel, tile);
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  spent_ += costs_.run_sec;
  ++measurements_;
  const double runtime = simulator_.Measure(kernel, tile);
  cache_.emplace(key, runtime);
  return runtime;
}

std::optional<double> LearnedEvaluator::EstimateKernel(
    const ir::Graph& kernel, const ir::TileConfig& tile) {
  const std::uint64_t key = KernelTileKey(kernel, tile);
  const auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;

  spent_ += inference_sec_;
  const core::PreparedKernel& pk = cache_.Get(kernel, kernel.Fingerprint());
  const ir::TileConfig* tile_arg =
      model_.config().use_tile_features ? &tile : nullptr;
  const double estimate = model_.PredictSeconds(pk, tile_arg);
  memo_.emplace(key, estimate);
  return estimate;
}

std::optional<double> AnalyticalEvaluator::EstimateKernel(
    const ir::Graph& kernel, const ir::TileConfig& tile) {
  spent_ += 1e-6;
  const auto estimate = model_.EstimateAbsoluteRuntime(kernel, tile);
  if (!estimate.has_value()) return std::nullopt;
  return estimate;
}

}  // namespace tpuperf::tune
