#include "autotuner/evaluators.h"

#include <algorithm>

#include "core/thread_pool.h"
#include "sim/hash.h"

namespace tpuperf::tune {
namespace {

std::uint64_t KernelTileKey(const ir::Graph& kernel,
                            const ir::TileConfig& tile) {
  std::uint64_t h = kernel.Fingerprint();
  for (const auto d : tile.dims) {
    h = sim::HashCombine(h, static_cast<std::uint64_t>(d));
  }
  return h;
}

}  // namespace

std::vector<std::optional<double>> CostEvaluator::EstimateBatch(
    std::span<const KernelTileRef> items) {
  std::vector<std::optional<double>> out;
  out.reserve(items.size());
  for (const KernelTileRef& item : items) {
    out.push_back(EstimateKernel(*item.kernel, *item.tile));
  }
  return out;
}

std::optional<double> HardwareEvaluator::EstimateKernel(
    const ir::Graph& kernel, const ir::TileConfig& tile) {
  const std::uint64_t fp = kernel.Fingerprint();
  if (compiled_.emplace(fp, true).second) spent_ += costs_.compile_sec;

  const std::uint64_t key = KernelTileKey(kernel, tile);
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  spent_ += costs_.run_sec;
  ++measurements_;
  const double runtime = simulator_.Measure(kernel, tile);
  cache_.emplace(key, runtime);
  return runtime;
}

std::optional<double> LearnedEvaluator::EstimateKernel(
    const ir::Graph& kernel, const ir::TileConfig& tile) {
  const std::uint64_t key = KernelTileKey(kernel, tile);
  const auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;

  spent_ += inference_sec_;
  const core::PreparedKernel& pk = cache_.Get(kernel, kernel.Fingerprint());
  const ir::TileConfig* tile_arg =
      model_.config().use_tile_features ? &tile : nullptr;
  const double estimate = model_.PredictSeconds(pk, tile_arg);
  memo_.emplace(key, estimate);
  return estimate;
}

std::vector<std::optional<double>> LearnedEvaluator::EstimateBatch(
    std::span<const KernelTileRef> items) {
  std::vector<std::optional<double>> out(items.size());

  // Resolve memo hits first; collect the misses for packed inference.
  // Duplicate (kernel, tile) queries within one call (fusion configs repeat
  // kernels) are collapsed to a single prediction and fanned back out.
  std::vector<size_t> pending;
  std::vector<std::uint64_t> keys(items.size());
  std::unordered_map<std::uint64_t, size_t> in_flight;
  pending.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    keys[i] = KernelTileKey(*items[i].kernel, *items[i].tile);
    const auto it = memo_.find(keys[i]);
    if (it != memo_.end()) {
      out[i] = it->second;
    } else if (in_flight.emplace(keys[i], i).second) {
      pending.push_back(i);
    }
  }

  const bool use_tiles = model_.config().use_tile_features;
  // The candidate pool splits into fixed kMaxBatch sub-batches; sub-batches
  // featurize (through the thread-safe PreparedCache) and run their packed
  // forward passes concurrently on the pool. Chunk boundaries are a pure
  // function of the pending list, and each chunk writes only its own
  // results, so the scores match the 1-thread run exactly.
  const size_t num_chunks = (pending.size() + kMaxBatch - 1) / kMaxBatch;
  const auto score_chunks = [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t c = c0; c < c1; ++c) {
      const size_t begin = static_cast<size_t>(c) * kMaxBatch;
      const size_t end = std::min(pending.size(), begin + kMaxBatch);
      std::vector<core::BatchItem> batch_items;
      batch_items.reserve(end - begin);
      for (size_t p = begin; p < end; ++p) {
        const KernelTileRef& item = items[pending[p]];
        const core::PreparedKernel& pk =
            cache_.Get(*item.kernel, item.kernel->Fingerprint());
        batch_items.push_back({&pk, use_tiles ? item.tile : nullptr});
      }
      const core::PreparedBatch batch = model_.PrepareBatch(batch_items);
      const std::vector<double> seconds = model_.PredictBatchSeconds(batch);
      for (size_t p = begin; p < end; ++p) {
        out[pending[p]] = seconds[p - begin];
      }
    }
  };
  if (num_chunks > 1 && core::ThreadPool::Global().size() > 1) {
    core::ParallelFor(0, static_cast<std::int64_t>(num_chunks), 1,
                      score_chunks);
  } else {
    score_chunks(0, static_cast<std::int64_t>(num_chunks));
  }
  // Memoization and cost accounting stay on the calling thread.
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = c * kMaxBatch;
    const size_t end = std::min(pending.size(), begin + kMaxBatch);
    for (size_t p = begin; p < end; ++p) {
      memo_.emplace(keys[pending[p]], *out[pending[p]]);
    }
    // Packed inference amortizes per-graph overhead, but only across the
    // queries actually packed together: charge one full sequential cost for
    // the chunk plus a quarter for each additional query. A chunk of 1 pays
    // the sequential price; a chunk of 32 pays ~8.75x (matching the >=3.5x
    // batch-32 amortization measured by bench_micro).
    spent_ += inference_sec_ * (0.75 + 0.25 * static_cast<double>(end - begin));
  }
  // Fan the deduplicated predictions out to any duplicate queries.
  for (size_t i = 0; i < items.size(); ++i) {
    if (!out[i].has_value()) {
      const auto it = memo_.find(keys[i]);
      if (it != memo_.end()) out[i] = it->second;
    }
  }
  return out;
}

std::optional<double> AnalyticalEvaluator::EstimateKernel(
    const ir::Graph& kernel, const ir::TileConfig& tile) {
  spent_ += 1e-6;
  const auto estimate = model_.EstimateAbsoluteRuntime(kernel, tile);
  if (!estimate.has_value()) return std::nullopt;
  return estimate;
}

}  // namespace tpuperf::tune
