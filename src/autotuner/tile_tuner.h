// Tile-size autotuning (paper §7.1-7.2, Fig. 4).
//
// Modes mirror the figure's series:
//   * kExhaustive    — measure every valid tile on hardware ('Exhaustive');
//   * kModelOnly     — trust the model's argmin ('Learned model 1', the
//                      in-compiler integration of §7.1);
//   * kTopK          — model ranks candidates, top-k are verified on real
//                      hardware ('Learned model 10' / 'Analytical 10').
#pragma once

#include <string>
#include <vector>

#include "autotuner/evaluators.h"
#include "dataset/fusion.h"
#include "ir/program.h"

namespace tpuperf::tune {

enum class TileTuneMode { kExhaustive, kModelOnly, kTopK };

struct TileTuneResult {
  std::string program;
  // True total runtime (sum over kernels) of the compiler-default tiles
  // (best according to the analytical model, §2.3).
  double default_runtime_sec = 0;
  // True total runtime of the tuned tile choices.
  double tuned_runtime_sec = 0;
  // Simulated hardware seconds consumed by verification measurements.
  double hardware_seconds = 0;
  int kernels = 0;

  double Speedup() const {
    return tuned_runtime_sec > 0 ? default_runtime_sec / tuned_runtime_sec
                                 : 1.0;
  }
};

class TileSizeAutotuner {
 public:
  TileSizeAutotuner(const sim::TpuSimulator& simulator,
                    const analytical::AnalyticalModel& analytical,
                    int max_candidates = 256)
      : simulator_(simulator),
        analytical_(analytical),
        max_candidates_(max_candidates) {}

  // Tunes every kernel of the program (after default fusion). `ranker` is
  // the cost model used for ranking in kModelOnly / kTopK modes (ignored
  // for kExhaustive).
  TileTuneResult Tune(const ir::Program& program, TileTuneMode mode,
                      CostEvaluator* ranker, int top_k = 10) const;

 private:
  const sim::TpuSimulator& simulator_;
  const analytical::AnalyticalModel& analytical_;
  int max_candidates_;
};

}  // namespace tpuperf::tune
