#include "autotuner/tile_tuner.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace tpuperf::tune {

TileTuneResult TileSizeAutotuner::Tune(const ir::Program& program,
                                       TileTuneMode mode, CostEvaluator* ranker,
                                       int top_k) const {
  if (mode != TileTuneMode::kExhaustive && ranker == nullptr) {
    throw std::invalid_argument("TileSizeAutotuner: ranker required");
  }
  TileTuneResult result;
  result.program = program.name;

  const data::EdgeList edges = data::EdgeList::FromGraph(program.graph);
  const data::FusionConfig fusion = data::DefaultFusion(program.graph, edges);
  const auto kernels = data::ApplyFusion(program.graph, edges, fusion);

  HardwareEvaluator hardware(simulator_);
  for (const ir::Kernel& kernel : kernels) {
    const auto candidates =
        simulator_.EnumerateTiles(kernel.graph, max_candidates_);
    if (candidates.empty()) continue;
    ++result.kernels;

    // Compiler default: analytical-model best (§2.3).
    const ir::TileConfig default_tile =
        analytical_.SelectBestTile(kernel.graph, candidates);
    const double default_runtime =
        simulator_.Measure(kernel.graph, default_tile);
    result.default_runtime_sec += default_runtime;

    double tuned = std::numeric_limits<double>::infinity();
    switch (mode) {
      case TileTuneMode::kExhaustive: {
        for (const auto& tile : candidates) {
          tuned = std::min(tuned, *hardware.EstimateKernel(kernel.graph, tile));
        }
        break;
      }
      case TileTuneMode::kModelOnly: {
        // All candidates of this kernel are scored in one batched call.
        std::vector<KernelTileRef> refs;
        refs.reserve(candidates.size());
        for (const auto& tile : candidates) {
          refs.push_back({&kernel.graph, &tile});
        }
        const auto scores = ranker->EstimateBatch(refs);
        double best_score = std::numeric_limits<double>::infinity();
        const ir::TileConfig* best_tile = &candidates.front();
        for (size_t i = 0; i < candidates.size(); ++i) {
          if (scores[i].has_value() && *scores[i] < best_score) {
            best_score = *scores[i];
            best_tile = &candidates[i];
          }
        }
        tuned = simulator_.Measure(kernel.graph, *best_tile);
        break;
      }
      case TileTuneMode::kTopK: {
        // Rank all candidates with the model (batched), verify the top k on
        // hardware. The compiler default is always among the verified set
        // (the autotuner keeps the default when nothing beats it), so the
        // '10' series never regresses below 1.0x — as in the paper's Fig. 4.
        tuned = default_runtime;
        std::vector<KernelTileRef> refs;
        refs.reserve(candidates.size());
        for (const auto& tile : candidates) {
          refs.push_back({&kernel.graph, &tile});
        }
        const auto scores = ranker->EstimateBatch(refs);
        std::vector<std::pair<double, int>> ranked;
        ranked.reserve(candidates.size());
        for (size_t i = 0; i < candidates.size(); ++i) {
          if (scores[i].has_value()) {
            ranked.emplace_back(*scores[i], static_cast<int>(i));
          }
        }
        std::sort(ranked.begin(), ranked.end());
        const int verify = std::min<int>(top_k, static_cast<int>(ranked.size()));
        for (int r = 0; r < verify; ++r) {
          const auto& tile =
              candidates[static_cast<size_t>(ranked[static_cast<size_t>(r)].second)];
          tuned = std::min(tuned, *hardware.EstimateKernel(kernel.graph, tile));
        }
        // A kernel no candidate could be scored for keeps its default tile.
        if (verify == 0) tuned = default_runtime;
        break;
      }
    }
    result.tuned_runtime_sec += tuned;
  }
  result.hardware_seconds = hardware.SpentSeconds();
  return result;
}

}  // namespace tpuperf::tune
