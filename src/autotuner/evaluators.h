// Cost evaluators for the autotuner (paper Fig. 1): real hardware (the
// simulator, with a simulated wall-clock budget for compile+run), the
// learned cost model, and the analytical model.
//
// The paper's motivation: "TPUs are in high demand, so we wish to minimize
// their use during autotuning" (§7.3). HardwareEvaluator charges simulated
// seconds per evaluation so experiments can reproduce the 1-minute /
// 10-minute hardware budgets of Fig. 5.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "analytical/analytical_model.h"
#include "core/evaluation.h"
#include "ir/graph.h"
#include "ir/tile.h"
#include "sim/simulator.h"

namespace tpuperf::tune {

// One (kernel, tile) query of a batched estimate.
struct KernelTileRef {
  const ir::Graph* kernel = nullptr;
  const ir::TileConfig* tile = nullptr;
};

// Abstract kernel-runtime estimator with an accumulated evaluation cost.
class CostEvaluator {
 public:
  virtual ~CostEvaluator() = default;

  // Estimated runtime (seconds) of a kernel under a tile config, or nullopt
  // when the evaluator cannot handle the kernel.
  virtual std::optional<double> EstimateKernel(const ir::Graph& kernel,
                                               const ir::TileConfig& tile) = 0;

  // Batched estimate of many (kernel, tile) pairs. Result i corresponds to
  // items[i]. The base implementation loops EstimateKernel; evaluators with
  // a real batched path (the learned model) override it.
  virtual std::vector<std::optional<double>> EstimateBatch(
      std::span<const KernelTileRef> items);

  // Simulated wall-clock seconds spent so far on evaluations.
  virtual double SpentSeconds() const = 0;

  virtual std::string_view name() const = 0;
};

// "Real hardware": measures on the simulator; each distinct kernel costs
// compile time and each measurement costs run time. Results are cached, as
// an autotuner harness would cache identical kernels.
class HardwareEvaluator : public CostEvaluator {
 public:
  struct Costs {
    double compile_sec = 0.6;   // per distinct kernel
    double run_sec = 0.05;      // per measurement (3 runs + harness overhead)
  };

  explicit HardwareEvaluator(const sim::TpuSimulator& simulator)
      : simulator_(simulator) {}
  HardwareEvaluator(const sim::TpuSimulator& simulator, Costs costs)
      : simulator_(simulator), costs_(costs) {}

  std::optional<double> EstimateKernel(const ir::Graph& kernel,
                                       const ir::TileConfig& tile) override;
  double SpentSeconds() const override { return spent_; }
  std::string_view name() const override { return "hardware"; }

  long measurements() const noexcept { return measurements_; }

 private:
  const sim::TpuSimulator& simulator_;
  Costs costs_;
  double spent_ = 0;
  long measurements_ = 0;
  std::unordered_map<std::uint64_t, double> cache_;
  std::unordered_map<std::uint64_t, bool> compiled_;
};

// The learned cost model (cheap: CPU inference).
class LearnedEvaluator : public CostEvaluator {
 public:
  LearnedEvaluator(const core::LearnedCostModel& model,
                   core::PreparedCache& cache, double inference_sec = 2e-4)
      : model_(model), cache_(cache), inference_sec_(inference_sec) {}

  std::optional<double> EstimateKernel(const ir::Graph& kernel,
                                       const ir::TileConfig& tile) override;
  // Packs all un-memoized queries into PreparedBatch chunks and runs them
  // through LearnedCostModel::PredictBatch — one large forward pass instead
  // of one per candidate. Sub-batches of kMaxBatch are scored concurrently
  // on the global core::ThreadPool (this is how the tuners' candidate pools
  // spread over the host's cores); results are exactly the 1-thread ones.
  // Batched inference is charged a discounted per-query cost (large GEMMs
  // amortize per-graph overhead).
  std::vector<std::optional<double>> EstimateBatch(
      std::span<const KernelTileRef> items) override;
  double SpentSeconds() const override { return spent_; }
  std::string_view name() const override { return "learned"; }

  // Upper bound on kernels packed per PredictBatch call.
  static constexpr int kMaxBatch = 64;

 private:
  const core::LearnedCostModel& model_;
  core::PreparedCache& cache_;
  double inference_sec_;
  double spent_ = 0;
  std::unordered_map<std::uint64_t, double> memo_;
};

// The analytical model (cheapest; unsupported on data-formatting kernels).
class AnalyticalEvaluator : public CostEvaluator {
 public:
  explicit AnalyticalEvaluator(const analytical::AnalyticalModel& model)
      : model_(model) {}

  std::optional<double> EstimateKernel(const ir::Graph& kernel,
                                       const ir::TileConfig& tile) override;
  double SpentSeconds() const override { return spent_; }
  std::string_view name() const override { return "analytical"; }

 private:
  const analytical::AnalyticalModel& model_;
  double spent_ = 0;
};

}  // namespace tpuperf::tune
