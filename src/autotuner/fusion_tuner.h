// Fusion autotuning via simulated annealing (paper §7.3, Fig. 5).
//
// Two regimes:
//   * Hardware-only ('HW m'): simulated annealing where every configuration
//     cost is measured on the (simulated) TPU, until the hardware-seconds
//     budget runs out.
//   * Cost model + hardware ('Cost model + HW m'): annealing is driven by a
//     cost model on CPU first; the most promising configurations are then
//     validated on hardware, in predicted order, within a small hardware
//     budget.
#pragma once

#include <optional>
#include <random>
#include <string>
#include <vector>

#include "autotuner/evaluators.h"
#include "dataset/datasets.h"
#include "dataset/fusion.h"
#include "ir/program.h"

namespace tpuperf::tune {

struct FusionTuneOptions {
  // Simulated-annealing schedule.
  int max_steps = 600;
  double initial_temperature = 0.25;
  double cooling = 0.995;

  // Hardware-seconds budget (Fig. 5: 60 or 600 seconds).
  double hardware_budget_sec = 600;
  // Cost-model search budget in model-evaluation seconds ("an hour on CPU",
  // effectively unbounded at this scale — the step cap binds first).
  double model_budget_sec = 3600;
  // Top configurations validated on hardware, in predicted-cost order.
  int validate_top = 8;

  // Start from the compiler default config (Fig. 5) or a random one (§7.3's
  // random-start experiment).
  bool start_from_default = true;
  std::uint64_t seed = 1;
};

struct FusionTuneResult {
  std::string program;
  double default_runtime_sec = 0;  // true runtime of the default config
  double best_runtime_sec = 0;     // true runtime of the best found config
  double hardware_seconds = 0;     // hardware budget actually consumed
  int configs_explored = 0;

  double Speedup() const {
    return best_runtime_sec > 0 ? default_runtime_sec / best_runtime_sec : 1.0;
  }
};

class FusionAutotuner {
 public:
  FusionAutotuner(const sim::TpuSimulator& simulator,
                  const analytical::AnalyticalModel& analytical)
      : simulator_(simulator), analytical_(analytical) {}

  // Hardware-only annealing.
  FusionTuneResult TuneWithHardware(const ir::Program& program,
                                    const FusionTuneOptions& options) const;

  // Cost-model-guided annealing with hardware validation. `model` scores
  // kernels (absolute-runtime scale).
  FusionTuneResult TuneWithModel(const ir::Program& program,
                                 CostEvaluator& model,
                                 const FusionTuneOptions& options) const;

 private:
  // Total program cost under a fusion config according to `evaluator`
  // (kernels the evaluator cannot score fall back to the analytical
  // tile-scale estimate). Also returns the kernels for reuse.
  double ConfigCost(const ir::Program& program, const data::EdgeList& edges,
                    const data::FusionConfig& config,
                    CostEvaluator& evaluator) const;

  // True runtime of a config, measured on the simulator (no budget).
  double TrueRuntime(const ir::Program& program, const data::EdgeList& edges,
                     const data::FusionConfig& config) const;

  const sim::TpuSimulator& simulator_;
  const analytical::AnalyticalModel& analytical_;
};

}  // namespace tpuperf::tune
