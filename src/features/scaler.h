// Min-max feature scaling (paper §3.1, footnote 1): "Features are
// independently scaled to be in the range [0, 1] using the minimum and
// maximum observed in the training set." Transforms clamp, so unseen test
// values cannot explode activations.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

namespace tpuperf::feat {

class FeatureScaler {
 public:
  FeatureScaler() = default;
  explicit FeatureScaler(int num_features);

  int num_features() const noexcept { return static_cast<int>(min_.size()); }

  // Accumulates one raw feature row from the training set.
  void Observe(std::span<const double> row);

  // Scales one value of feature `index` into [0, 1] (clamped).
  double Transform(int index, double value) const;
  // Scales a whole row in place.
  void TransformRow(std::span<double> row) const;
  // Scales a row into floats (for Matrix rows).
  void TransformRow(std::span<const double> row, std::span<float> out) const;

  bool fitted() const noexcept { return observed_ > 0; }
  long observed() const noexcept { return observed_; }

  // Raw fitted statistics, for serialization (the dataset store) and tests.
  std::span<const double> mins() const noexcept { return min_; }
  std::span<const double> maxs() const noexcept { return max_; }

  // Reconstructs a scaler from serialized statistics. Throws
  // std::invalid_argument when min/max widths differ.
  static FeatureScaler FromStats(std::vector<double> min,
                                 std::vector<double> max, long observed);

  void Save(std::ostream& os) const;
  void Load(std::istream& is);

 private:
  std::vector<double> min_;
  std::vector<double> max_;
  long observed_ = 0;
};

}  // namespace tpuperf::feat
