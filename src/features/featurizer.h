// Feature extraction from kernel graphs (paper §3.1).
//
// A model input is a kernel represented as node features, whole-kernel
// features, and an adjacency matrix. Node features are the opcode (fed to
// an embedding) plus scalar features describing the node's behaviour:
// output shape, layout, striding/padding/filter size (window), and an
// output flag. Variable-length lists (shape dims, tile dims) are padded or
// truncated to a fixed width and augmented with their sum and product —
// "including the product is critical as it usually represents the volume
// of a tensor".
//
// Deviation noted in DESIGN.md: magnitude features (dims, byte counts, flop
// counts, products) are passed through log1p before min-max scaling; with
// the small networks trainable on CPU this stabilizes training without
// changing what information the model sees.
#pragma once

#include <vector>

#include "ir/analysis.h"
#include "ir/graph.h"
#include "ir/tile.h"

namespace tpuperf::feat {

// Widths of the raw feature blocks.
inline constexpr int kNodeScalarFeatures = 35;
// Tile features: raw dims (alignment effects are functions of exact
// extents), log1p dims (magnitude), then sum and product of all values.
inline constexpr int kTileFeatures = 2 * ir::kMaxEncodedRank + 2;
inline constexpr int kStaticPerfFeatures = 4;

// Raw (unscaled) featurization of one kernel, shared by all tile configs of
// that kernel.
struct KernelFeatures {
  // Per node: opcode id (embedding input) and scalar feature row.
  std::vector<int> opcode_ids;
  // Row-major [num_nodes x kNodeScalarFeatures].
  std::vector<std::vector<double>> node_scalars;
  // operand_lists[i] = operand node ids of node i (the adjacency input).
  std::vector<std::vector<int>> operand_lists;
  // The four optional static performance features (§3.1): flops, bytes
  // read, bytes written, special-functional-unit instruction count.
  std::vector<double> static_perf;

  int num_nodes() const noexcept {
    return static_cast<int>(opcode_ids.size());
  }
};

// Extracts raw features from a kernel graph.
KernelFeatures FeaturizeKernel(const ir::Graph& kernel);

// Raw tile-size feature vector: dims padded/truncated to kMaxEncodedRank,
// then sum and product of all (untruncated) values.
std::vector<double> TileFeatures(const ir::TileConfig& tile);

}  // namespace tpuperf::feat
