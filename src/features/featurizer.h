// Feature extraction from kernel graphs (paper §3.1).
//
// A model input is a kernel represented as node features, whole-kernel
// features, and an adjacency matrix. Node features are the opcode (fed to
// an embedding) plus scalar features describing the node's behaviour:
// output shape, layout, striding/padding/filter size (window), and an
// output flag. Variable-length lists (shape dims, tile dims) are padded or
// truncated to a fixed width and augmented with their sum and product —
// "including the product is critical as it usually represents the volume
// of a tensor".
//
// Deviation noted in DESIGN.md: magnitude features (dims, byte counts, flop
// counts, products) are passed through log1p before min-max scaling; with
// the small networks trainable on CPU this stabilizes training without
// changing what information the model sees.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/analysis.h"
#include "ir/graph.h"
#include "ir/tile.h"

namespace tpuperf::feat {

// Widths of the raw feature blocks.
inline constexpr int kNodeScalarFeatures = 35;
// Tile features: raw dims (alignment effects are functions of exact
// extents), log1p dims (magnitude), then sum and product of all values.
inline constexpr int kTileFeatures = 2 * ir::kMaxEncodedRank + 2;
inline constexpr int kStaticPerfFeatures = 4;

// Raw (unscaled) featurization of one kernel, shared by all tile configs of
// that kernel.
struct KernelFeatures {
  // Per node: opcode id (embedding input) and scalar feature row.
  std::vector<int> opcode_ids;
  // Row-major [num_nodes x kNodeScalarFeatures].
  std::vector<std::vector<double>> node_scalars;
  // operand_lists[i] = operand node ids of node i (the adjacency input).
  std::vector<std::vector<int>> operand_lists;
  // The four optional static performance features (§3.1): flops, bytes
  // read, bytes written, special-functional-unit instruction count.
  std::vector<double> static_perf;

  int num_nodes() const noexcept {
    return static_cast<int>(opcode_ids.size());
  }
};

// Extracts raw features from a kernel graph.
KernelFeatures FeaturizeKernel(const ir::Graph& kernel);

// Process-wide count of FeaturizeKernel invocations (atomic). The on-disk
// dataset store uses it to prove warm-cache runs never re-walk a kernel
// graph; TileFeatures and scaling passes are deliberately not counted (they
// are per-sample arithmetic, unavoidable per batch).
long FeaturizeKernelInvocations() noexcept;
void ResetFeaturizeKernelInvocations() noexcept;

// Source of pre-computed raw kernel features, keyed by the kernel graph's
// Fingerprint() with its StructuralSignature() as the collision check (both
// hashes are opaque here; ir::Graph defines them). Implemented by the
// on-disk dataset store; consulted by core::PreparedCache and the trainers
// so warm-cache runs skip FeaturizeKernel entirely. Lookup must be safe to
// call concurrently and return nullptr when the kernel is absent; returned
// pointers stay valid for the source's lifetime.
class KernelFeatureSource {
 public:
  virtual ~KernelFeatureSource() = default;
  virtual const KernelFeatures* Lookup(
      std::uint64_t fingerprint, std::uint64_t structural_sig) const = 0;
};

// Process-global default source (non-owning; nullptr when unset). Benches
// register loaded stores here before any training/evaluation starts; set-up
// is expected to happen single-threaded, reads are atomic.
void SetGlobalKernelFeatureSource(const KernelFeatureSource* source) noexcept;
const KernelFeatureSource* GlobalKernelFeatureSource() noexcept;

// Raw tile-size feature vector: dims padded/truncated to kMaxEncodedRank,
// then sum and product of all (untruncated) values.
std::vector<double> TileFeatures(const ir::TileConfig& tile);

}  // namespace tpuperf::feat
