#include "features/scaler.h"

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace tpuperf::feat {

FeatureScaler::FeatureScaler(int num_features)
    : min_(static_cast<size_t>(num_features),
           std::numeric_limits<double>::infinity()),
      max_(static_cast<size_t>(num_features),
           -std::numeric_limits<double>::infinity()) {}

void FeatureScaler::Observe(std::span<const double> row) {
  if (row.size() != min_.size()) {
    throw std::invalid_argument("FeatureScaler::Observe: width mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    min_[i] = std::min(min_[i], row[i]);
    max_[i] = std::max(max_[i], row[i]);
  }
  ++observed_;
}

double FeatureScaler::Transform(int index, double value) const {
  const auto i = static_cast<size_t>(index);
  const double lo = min_[i];
  const double hi = max_[i];
  if (!(hi > lo)) return 0.0;  // constant (or never-observed) feature
  const double scaled = (value - lo) / (hi - lo);
  return std::clamp(scaled, 0.0, 1.0);
}

void FeatureScaler::TransformRow(std::span<double> row) const {
  if (row.size() != min_.size()) {
    throw std::invalid_argument("FeatureScaler::TransformRow: width mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    row[i] = Transform(static_cast<int>(i), row[i]);
  }
}

void FeatureScaler::TransformRow(std::span<const double> row,
                                 std::span<float> out) const {
  if (row.size() != min_.size() || out.size() != row.size()) {
    throw std::invalid_argument("FeatureScaler::TransformRow: width mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    out[i] = static_cast<float>(Transform(static_cast<int>(i), row[i]));
  }
}

FeatureScaler FeatureScaler::FromStats(std::vector<double> min,
                                       std::vector<double> max,
                                       long observed) {
  if (min.size() != max.size()) {
    throw std::invalid_argument("FeatureScaler::FromStats: width mismatch");
  }
  FeatureScaler scaler;
  scaler.min_ = std::move(min);
  scaler.max_ = std::move(max);
  scaler.observed_ = observed;
  return scaler;
}

void FeatureScaler::Save(std::ostream& os) const {
  const std::uint64_t n = min_.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  os.write(reinterpret_cast<const char*>(&observed_), sizeof(observed_));
  os.write(reinterpret_cast<const char*>(min_.data()),
           static_cast<std::streamsize>(n * sizeof(double)));
  os.write(reinterpret_cast<const char*>(max_.data()),
           static_cast<std::streamsize>(n * sizeof(double)));
}

void FeatureScaler::Load(std::istream& is) {
  std::uint64_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  is.read(reinterpret_cast<char*>(&observed_), sizeof(observed_));
  min_.resize(n);
  max_.resize(n);
  is.read(reinterpret_cast<char*>(min_.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  is.read(reinterpret_cast<char*>(max_.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  if (!is) throw std::runtime_error("FeatureScaler::Load: truncated stream");
}

}  // namespace tpuperf::feat
