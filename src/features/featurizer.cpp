#include "features/featurizer.h"

#include <atomic>
#include <cmath>

namespace tpuperf::feat {
namespace {

std::atomic<long> g_featurize_invocations{0};
std::atomic<const KernelFeatureSource*> g_feature_source{nullptr};

double Log1p(double v) { return std::log1p(std::max(0.0, v)); }

// Node scalar feature layout. Kept in one place so tests can assert on it.
//  [0]      rank
//  [1..6]   output dims, padded/truncated to 6 (log1p)
//  [7]      sum of dims (log1p)
//  [8]      product of dims = tensor volume (log1p)
//  [9..14]  layout minor-to-major permutation, padded to 6
//  [15]     element byte width
//  [16..19] window sizes, padded to 4
//  [20..23] window strides, padded to 4
//  [24..27] window low padding, padded to 4
//  [28]     window tap count (log1p)
//  [29]     operand count
//  [30]     is_output flag
//  [31]     output byte size (log1p)
//  [32]     convolution feature_in (log1p)
//  [33]     convolution feature_out (log1p)
//  [34]     number of reduced dimensions
std::vector<double> NodeScalars(const ir::Node& node) {
  std::vector<double> f(kNodeScalarFeatures, 0.0);
  const ir::Shape& s = node.shape;
  f[0] = s.rank();
  double sum = 0, prod = 1;
  for (int i = 0; i < s.rank(); ++i) {
    const double d = static_cast<double>(s.dim(i));
    if (i < ir::kMaxEncodedRank) f[static_cast<size_t>(1 + i)] = Log1p(d);
    sum += d;
    prod *= d;
  }
  f[7] = Log1p(sum);
  f[8] = Log1p(prod);
  const auto& layout = s.minor_to_major();
  for (size_t i = 0; i < layout.size() && i < ir::kMaxEncodedRank; ++i) {
    f[9 + i] = layout[i];
  }
  f[15] = ir::ByteWidth(s.element_type());
  for (size_t i = 0; i < node.window.dims.size() && i < 4; ++i) {
    const auto& w = node.window.dims[i];
    f[16 + i] = static_cast<double>(w.size);
    f[20 + i] = static_cast<double>(w.stride);
    f[24 + i] = static_cast<double>(w.padding_low);
  }
  f[28] = Log1p(static_cast<double>(node.window.TapCount()));
  f[29] = static_cast<double>(node.operands.size());
  f[30] = node.is_output ? 1.0 : 0.0;
  f[31] = Log1p(static_cast<double>(s.byte_size()));
  f[32] = Log1p(static_cast<double>(node.feature_in));
  f[33] = Log1p(static_cast<double>(node.feature_out));
  f[34] = static_cast<double>(node.reduce_dims.size());
  return f;
}

}  // namespace

long FeaturizeKernelInvocations() noexcept {
  return g_featurize_invocations.load(std::memory_order_relaxed);
}

void ResetFeaturizeKernelInvocations() noexcept {
  g_featurize_invocations.store(0, std::memory_order_relaxed);
}

void SetGlobalKernelFeatureSource(const KernelFeatureSource* source) noexcept {
  g_feature_source.store(source, std::memory_order_release);
}

const KernelFeatureSource* GlobalKernelFeatureSource() noexcept {
  return g_feature_source.load(std::memory_order_acquire);
}

KernelFeatures FeaturizeKernel(const ir::Graph& kernel) {
  g_featurize_invocations.fetch_add(1, std::memory_order_relaxed);
  KernelFeatures kf;
  const int n = kernel.num_nodes();
  kf.opcode_ids.reserve(static_cast<size_t>(n));
  kf.node_scalars.reserve(static_cast<size_t>(n));
  kf.operand_lists.reserve(static_cast<size_t>(n));

  // Mark output nodes the way the featurizer sees them (§3.1: outputs are
  // "expressed via an extra feature associated with the output nodes").
  std::vector<bool> is_output(static_cast<size_t>(n), false);
  for (const ir::NodeId id : kernel.OutputIds()) {
    is_output[static_cast<size_t>(id)] = true;
  }

  for (const ir::Node& node : kernel.nodes()) {
    kf.opcode_ids.push_back(static_cast<int>(node.op));
    ir::Node annotated = node;
    annotated.is_output = is_output[static_cast<size_t>(node.id)];
    kf.node_scalars.push_back(NodeScalars(annotated));
    kf.operand_lists.emplace_back(node.operands.begin(), node.operands.end());
  }

  const auto cost = ir::analysis::AnalyzeKernel(kernel);
  kf.static_perf = {Log1p(cost.flops),
                    Log1p(static_cast<double>(cost.bytes_read)),
                    Log1p(static_cast<double>(cost.bytes_written)),
                    Log1p(cost.transcendental_ops)};
  return kf;
}

std::vector<double> TileFeatures(const ir::TileConfig& tile) {
  std::vector<double> f(kTileFeatures, 0.0);
  double sum = 0, prod = 1;
  for (size_t i = 0; i < tile.dims.size(); ++i) {
    const double d = static_cast<double>(tile.dims[i]);
    if (i < ir::kMaxEncodedRank) {
      f[i] = d;                           // raw extent (alignment-sensitive)
      f[ir::kMaxEncodedRank + i] = Log1p(d);  // magnitude
    }
    sum += d;
    prod *= d;
  }
  f[2 * ir::kMaxEncodedRank] = Log1p(sum);
  f[2 * ir::kMaxEncodedRank + 1] = Log1p(prod);
  return f;
}

}  // namespace tpuperf::feat
