#include "dataset/datasets.h"

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace tpuperf::data {
namespace {

// Picks one program index per requested family, preferring variant 0.
std::vector<int> OnePerFamily(std::span<const ir::Program> corpus,
                              std::span<const std::string> families,
                              std::mt19937_64& rng) {
  std::vector<int> picked;
  for (const std::string& family : families) {
    std::vector<int> members;
    for (size_t i = 0; i < corpus.size(); ++i) {
      if (corpus[i].family == family) members.push_back(static_cast<int>(i));
    }
    if (members.empty()) continue;
    std::uniform_int_distribution<size_t> pick(0, members.size() - 1);
    picked.push_back(members[pick(rng)]);
  }
  return picked;
}

}  // namespace

void DatasetOptions::ApplyScale(double scale) {
  const auto scaled = [scale](int v) {
    return std::max(2, static_cast<int>(v * scale));
  };
  max_tile_configs_per_kernel = scaled(max_tile_configs_per_kernel);
  fusion_configs_per_program = scaled(fusion_configs_per_program);
}

SplitSpec RandomSplit(std::span<const ir::Program> corpus,
                      std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const std::string test_families[] = {
      "ConvDrawLike", "WaveRNNLike", "NMT",      "SSDLike",
      "RNNLM",        "ResNetV1",    "ResNetV2", "TranslateLike"};
  const std::string val_families[] = {
      "InceptionLike",  "TransformerLM",  "AutoCompletionLM",
      "SmartComposeLike", "Char2FeatsLike", "RankingLike",
      "ImageEmbedLike", "Feats2WaveLike"};
  SplitSpec split;
  split.test = OnePerFamily(corpus, test_families, rng);
  split.validation = OnePerFamily(corpus, val_families, rng);
  std::set<int> held(split.test.begin(), split.test.end());
  held.insert(split.validation.begin(), split.validation.end());
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (!held.contains(static_cast<int>(i))) {
      split.train.push_back(static_cast<int>(i));
    }
  }
  return split;
}

SplitSpec ManualSplit(std::span<const ir::Program> corpus) {
  // Families held out for their (subjective) dissimilarity to the rest;
  // test applications follow Table 8: Ranking, Feats2Wave, ImageEmbed,
  // SmartCompose, WaveRNN 1, WaveRNN 2.
  const std::set<std::string> heldout_families = {
      "RankingLike", "Feats2WaveLike", "ImageEmbedLike", "SmartComposeLike",
      "WaveRNNLike"};
  SplitSpec split;
  std::map<std::string, int> test_taken;
  for (size_t i = 0; i < corpus.size(); ++i) {
    const ir::Program& p = corpus[i];
    if (heldout_families.contains(p.family)) {
      const int allowed = p.family == "WaveRNNLike" ? 2 : 1;
      if (test_taken[p.family] < allowed) {
        split.test.push_back(static_cast<int>(i));
        ++test_taken[p.family];
      }
      // Remaining variants of held-out families are dropped entirely.
      continue;
    }
    split.train.push_back(static_cast<int>(i));
  }
  // Move the last program of eight distinct training families to validation.
  std::map<std::string, int> last_of_family;
  for (const int idx : split.train) {
    last_of_family[corpus[static_cast<size_t>(idx)].family] = idx;
  }
  std::set<int> val;
  for (const auto& [family, idx] : last_of_family) {
    if (val.size() >= 8) break;
    val.insert(idx);
  }
  split.validation.assign(val.begin(), val.end());
  std::erase_if(split.train, [&](int idx) { return val.contains(idx); });
  return split;
}

std::size_t TileDataset::TotalSamples() const {
  std::size_t n = 0;
  for (const auto& k : kernels) n += k.runtimes.size();
  return n;
}

std::vector<int> TileDataset::KernelsOfPrograms(
    std::span<const int> program_ids) const {
  const std::unordered_set<int> wanted(program_ids.begin(), program_ids.end());
  std::vector<int> out;
  for (size_t i = 0; i < kernels.size(); ++i) {
    if (wanted.contains(kernels[i].record.program_id)) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

std::vector<int> FusionDataset::SamplesOfPrograms(
    std::span<const int> program_ids) const {
  const std::unordered_set<int> wanted(program_ids.begin(), program_ids.end());
  std::vector<int> out;
  for (size_t i = 0; i < samples.size(); ++i) {
    if (wanted.contains(samples[i].record.program_id)) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

ir::TileConfig CompilerDefaultTile(const ir::Graph& kernel,
                                   const sim::TpuSimulator& simulator,
                                   const analytical::AnalyticalModel& analytical,
                                   int max_enumerated_tiles) {
  const auto candidates = simulator.EnumerateTiles(kernel, max_enumerated_tiles);
  if (candidates.empty()) return simulator.DefaultTile(kernel);
  return analytical.SelectBestTile(kernel, candidates);
}

TileDataset BuildTileDataset(std::span<const ir::Program> corpus,
                             const sim::TpuSimulator& simulator,
                             const DatasetOptions& options) {
  TileDataset dataset;
  std::mt19937_64 rng(options.seed);
  // Measurement cache: identical kernels (same fingerprint) share configs
  // and runtimes — common because conv blocks repeat within a program.
  std::unordered_map<std::uint64_t, int> measured;  // fingerprint -> index

  for (size_t pid = 0; pid < corpus.size(); ++pid) {
    const ir::Program& program = corpus[pid];
    const EdgeList edges = EdgeList::FromGraph(program.graph);
    const FusionConfig config = DefaultFusion(program.graph, edges);
    const auto kernels = ApplyFusion(program.graph, edges, config);

    for (const ir::Kernel& kernel : kernels) {
      TileKernelData data;
      data.record.fingerprint = kernel.graph.Fingerprint();
      data.record.program_id = static_cast<int>(pid);
      data.record.family = program.family;

      const auto cached = measured.find(data.record.fingerprint);
      if (cached != measured.end()) {
        const TileKernelData& prior =
            dataset.kernels[static_cast<size_t>(cached->second)];
        data.record.kernel = prior.record.kernel;
        data.configs = prior.configs;
        data.runtimes = prior.runtimes;
        dataset.kernels.push_back(std::move(data));
        continue;
      }

      auto candidates =
          simulator.EnumerateTiles(kernel.graph, options.max_enumerated_tiles);
      if (static_cast<int>(candidates.size()) <
          2) {  // kernels without a real tiling choice carry no signal
        continue;
      }
      if (static_cast<int>(candidates.size()) >
          options.max_tile_configs_per_kernel) {
        std::shuffle(candidates.begin(), candidates.end(), rng);
        candidates.resize(
            static_cast<size_t>(options.max_tile_configs_per_kernel));
      }
      data.record.kernel = kernel;
      for (const ir::TileConfig& tile : candidates) {
        data.configs.push_back(tile);
        data.runtimes.push_back(simulator.Measure(kernel.graph, tile));
      }
      measured.emplace(data.record.fingerprint,
                       static_cast<int>(dataset.kernels.size()));
      dataset.kernels.push_back(std::move(data));
    }
  }
  return dataset;
}

FusionDataset BuildFusionDataset(std::span<const ir::Program> corpus,
                                 const sim::TpuSimulator& simulator,
                                 const analytical::AnalyticalModel& analytical,
                                 const DatasetOptions& options) {
  FusionDataset dataset;
  std::mt19937_64 rng(options.seed ^ 0xF051ull);
  std::unordered_set<std::uint64_t> seen;

  for (size_t pid = 0; pid < corpus.size(); ++pid) {
    const ir::Program& program = corpus[pid];
    const EdgeList edges = EdgeList::FromGraph(program.graph);

    const auto add_kernels = [&](const std::vector<ir::Kernel>& kernels,
                                 bool from_default) {
      for (const ir::Kernel& kernel : kernels) {
        const std::uint64_t fp = kernel.graph.Fingerprint();
        if (!seen.insert(fp).second) continue;  // duplicate elimination (§4)
        FusionSample sample;
        sample.record.kernel = kernel;
        sample.record.fingerprint = fp;
        sample.record.program_id = static_cast<int>(pid);
        sample.record.family = program.family;
        sample.tile = CompilerDefaultTile(kernel.graph, simulator, analytical,
                                          options.max_enumerated_tiles / 2);
        sample.runtime = simulator.Measure(kernel.graph, sample.tile);
        sample.from_default_config = from_default;
        dataset.samples.push_back(std::move(sample));
      }
    };

    // The default configuration's kernels double as the §5.2 calibration set.
    const FusionConfig default_config = DefaultFusion(program.graph, edges);
    add_kernels(ApplyFusion(program.graph, edges, default_config), true);

    std::uniform_real_distribution<double> prob(0.15, 0.85);
    for (int c = 0; c < options.fusion_configs_per_program; ++c) {
      const FusionConfig config =
          RandomFusion(program.graph, edges, rng, prob(rng));
      add_kernels(ApplyFusion(program.graph, edges, config), false);
    }
  }
  return dataset;
}

}  // namespace tpuperf::data
