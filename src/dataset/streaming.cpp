#include "dataset/streaming.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <numeric>
#include <stdexcept>

#include "core/thread_pool.h"

namespace tpuperf::data {
namespace {

// How many part dictionaries stay decoded at once. Windows touch parts in
// contiguous runs, so a tiny cache already makes eviction rare; the bound
// keeps dictionary memory O(1) in the part count.
constexpr std::size_t kDictCacheParts = 4;

// SplitMix64: a tiny, implementation-independent generator for the window
// shuffle (std::mt19937_64 would work, but hand-rolling keeps the entire
// shuffle spec'd by this file, and std::shuffle is out anyway — its
// permutation is implementation-defined).
std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint32_t TaskRecordType(StreamTask task) {
  return task == StreamTask::kTile ? kTileKernelRecordType
                                   : kFusionSampleRecordType;
}

using Clock = std::chrono::steady_clock;

}  // namespace

// ---- StreamedFeatures ------------------------------------------------------

const feat::KernelFeatures* StreamedFeatures::Lookup(
    std::uint64_t fingerprint, std::uint64_t structural_sig) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto key = std::make_pair(fingerprint, structural_sig);
  if (const auto hit = cache_.find(key); hit != cache_.end()) {
    return hit->second;
  }
  const auto it = index_.find(fingerprint);
  if (it == index_.end()) return nullptr;
  const Loc* loc = nullptr;
  for (const Loc& candidate : it->second) {
    if (candidate.structural_sig == structural_sig) {
      loc = &candidate;
      break;
    }
  }
  if (loc == nullptr) return nullptr;
  if (readers_.size() < part_paths_.size()) {
    readers_.resize(part_paths_.size());
  }
  std::unique_ptr<DatasetReader>& reader = readers_[loc->part];
  if (reader == nullptr) {
    reader = std::make_unique<DatasetReader>(part_paths_[loc->part],
                                             ReadMode::kStream);
  }
  const RecordView view = reader->ReadRecordAt(loc->offset);
  loaded_.push_back(DecodeFeaturizedRecord(view));
  const feat::KernelFeatures* features = &loaded_.back().features;
  cache_.emplace(key, features);
  return features;
}

std::size_t StreamedFeatures::loaded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return loaded_.size();
}

// ---- StreamingSampler ------------------------------------------------------

StreamingSampler::StreamingSampler(std::string store_path, StreamTask task,
                                   StreamingOptions options)
    : task_(task), options_(options),
      features_(std::make_shared<StreamedFeatures>()) {
  const auto start = Clock::now();

  // Resolve the store into its part files. A sharded store's parts are
  // verified against the manifest's byte sizes and record counts here; the
  // per-record checksums are verified as records stream.
  DatasetReader root(store_path, ReadMode::kStream);
  if (root.sharded_manifest()) {
    const StoreManifest manifest = ReadStoreManifest(root);
    for (const StorePartInfo& info : manifest.parts) {
      const std::string part_path = StorePartPath(store_path, info.file);
      std::error_code ec;
      if (!std::filesystem::exists(part_path, ec) || ec) {
        throw StoreError(store_path + ": part file " + info.file +
                         " listed in the manifest is missing — the sharded "
                         "store is incomplete; delete the manifest and "
                         "rebuild");
      }
      const auto actual = std::filesystem::file_size(part_path, ec);
      if (!ec && actual != info.bytes) {
        throw StoreError(part_path + ": manifest lists " +
                         std::to_string(info.bytes) +
                         " bytes but the part is " + std::to_string(actual) +
                         " — truncated or swapped part file");
      }
      parts_.push_back(PartIndex{part_path, 0, {}});
    }
  } else {
    parts_.push_back(PartIndex{store_path, 0, {}});
  }

  // One streaming pass per part: index task records and dictionary records
  // by offset, and the featurized records by (fingerprint, signature).
  // Program and scaler records are seeked past without buffering.
  const std::uint32_t wanted[] = {kGraphDictRecordType, TaskRecordType(task_),
                                  kFeaturizedRecordType};
  features_->part_paths_.reserve(parts_.size());
  for (std::uint32_t p = 0; p < parts_.size(); ++p) {
    PartIndex& part = parts_[p];
    DatasetReader reader(part.path, ReadMode::kStream);
    part.version = reader.format_version();
    reader.ForEachRecord(
        [&](const RecordView& view) {
          if (view.type == kGraphDictRecordType) {
            part.dict_offsets.push_back(view.offset);
          } else if (view.type == kFeaturizedRecordType) {
            const auto [fingerprint, sig] = PeekFeaturizedKey(view);
            features_->index_[fingerprint].push_back(
                StreamedFeatures::Loc{sig, p, view.offset});
            ++features_->indexed_;
          } else {
            records_.emplace_back(p, view.offset);
          }
        },
        wanted);
    features_->part_paths_.push_back(part.path);
  }

  window_records_ =
      (options_.window_records == 0 || options_.window_records >= records_.size())
          ? std::max<std::size_t>(records_.size(), 1)
          : options_.window_records;
  windows_ = (records_.size() + window_records_ - 1) / window_records_;
  ReshuffleOrder();
  scan_seconds_ =
      std::chrono::duration<double>(Clock::now() - start).count();
}

StreamingSampler::~StreamingSampler() {
  if (prefetch_valid_) {
    try {
      prefetched_.get();
    } catch (...) {
      // The prefetch's error would have surfaced on the next Next(); the
      // sampler is being destroyed, so there is no caller left to rethrow
      // to.
    }
  }
}

void StreamingSampler::ReshuffleOrder() {
  order_.resize(windows_);
  std::iota(order_.begin(), order_.end(), 0u);
  if (order_.size() < 2) return;
  std::uint64_t state = options_.seed ^ (epoch_ * 0x9E3779B97F4A7C15ull) ^
                        0x5747EA33ED57ull;
  for (std::size_t i = order_.size() - 1; i > 0; --i) {
    const std::size_t j =
        static_cast<std::size_t>(SplitMix64(state) % (i + 1));
    std::swap(order_[i], order_[j]);
  }
}

std::shared_ptr<const GraphDict> StreamingSampler::DictFor(
    std::uint32_t part) const {
  std::lock_guard<std::mutex> lock(dict_mu_);
  for (const auto& [cached_part, dict] : dict_cache_) {
    if (cached_part == part) return dict;
  }
  auto dict = std::make_shared<GraphDict>();
  const PartIndex& index = parts_[part];
  if (!index.dict_offsets.empty()) {
    DatasetReader reader(index.path, ReadMode::kStream);
    for (const std::uint64_t offset : index.dict_offsets) {
      dict->Add(reader.ReadRecordAt(offset));
    }
  }
  dict_cache_.emplace_back(part, dict);
  if (dict_cache_.size() > kDictCacheParts) dict_cache_.pop_front();
  return dict;
}

StreamWindow StreamingSampler::LoadWindow(std::size_t w,
                                          std::uint64_t epoch) const {
  StreamWindow out;
  out.window_index = w;
  out.epoch = epoch;
  out.begin = w * window_records_;
  out.end = std::min(records_.size(), out.begin + window_records_);
  if (task_ == StreamTask::kTile) {
    out.tile.reserve(out.size());
  } else {
    out.fusion.reserve(out.size());
  }
  // Records are in stream order, so the slice touches each part in one
  // contiguous run; one stream reader per run keeps open descriptors and
  // resident memory O(1).
  std::unique_ptr<DatasetReader> reader;
  std::shared_ptr<const GraphDict> dict;
  std::uint32_t current_part = 0;
  for (std::size_t i = out.begin; i < out.end; ++i) {
    const auto [part, offset] = records_[i];
    if (reader == nullptr || part != current_part) {
      reader = std::make_unique<DatasetReader>(parts_[part].path,
                                               ReadMode::kStream);
      dict = DictFor(part);
      current_part = part;
    }
    const RecordView view = reader->ReadRecordAt(offset);
    if (task_ == StreamTask::kTile) {
      out.tile.push_back(
          DecodeTileKernelRecord(view, parts_[part].version, *dict));
    } else {
      out.fusion.push_back(
          DecodeFusionSampleRecord(view, parts_[part].version, *dict));
    }
  }
  return out;
}

StreamWindow StreamingSampler::Window(std::size_t w) const {
  if (w >= windows_) {
    throw std::out_of_range("StreamingSampler::Window: index " +
                            std::to_string(w) + " of " +
                            std::to_string(windows_));
  }
  return LoadWindow(w, epoch_);
}

void StreamingSampler::LaunchPrefetch() {
  const std::size_t w = order_[next_in_epoch_];
  const std::uint64_t ep = epoch_;
  prefetched_ = core::ThreadPool::Global().Submit(
      [this, w, ep] { return LoadWindow(w, ep); });
  prefetch_valid_ = true;
}

StreamWindow StreamingSampler::Next() {
  if (windows_ == 0) {
    throw StoreError("StreamingSampler::Next: the store holds no records "
                     "for this task");
  }
  if (!prefetch_valid_) LaunchPrefetch();
  StreamWindow window = prefetched_.get();
  prefetch_valid_ = false;
  if (++next_in_epoch_ == windows_) {
    next_in_epoch_ = 0;
    ++epoch_;
    ReshuffleOrder();
  }
  if (options_.prefetch) LaunchPrefetch();
  return window;
}

}  // namespace tpuperf::data
