/// \file
/// On-disk featurized dataset store (ROADMAP "Dataset scale-out").
///
/// The paper collects its 25M/208M-sample datasets once and reuses them
/// for every experiment (§4); Halide's learned cost model and TenSet ship
/// pre-featurized sample stores for the same reason. This store decouples
/// training scale from generation cost the same way: a dataset build
/// (simulation measurements) and its featurization (feat::FeaturizeKernel
/// graph walks) are written to disk once, and warm runs load both without
/// touching the simulator or the featurizer.
///
/// ## Record framing
///
/// File format (versioned, little-endian regardless of host):
///
///     header:  magic "TPUPERFD" (8 B) | format version u32 |
///              feature-config hash u64 | record count u64
///     record:  type u32 | payload size u64 | FNV-1a-64 checksum of
///              payload u64 | payload bytes
///
/// Records are written back to back after the header; the record count is
/// patched into the header by DatasetWriter::Finish(). Record types:
/// program info, tile-task kernels (graph + measured tile configs +
/// runtimes), fusion samples, featurized kernels (raw node features as
/// f64 + adjacency in CSR form + static perf), and named feature-scaler
/// statistics. Unknown record types are a read error (not skipped): a
/// store is only readable by a format version >= the one that wrote it.
///
/// ## Corruption guarantees
///
/// Readers verify the magic, reject files written by a NEWER format
/// version, reject mismatched feature-config hashes (the featurizer
/// layout changed; cached matrices would be meaningless), and verify
/// every record's size and checksum — truncation, bit flips, trailing
/// garbage, and structural nonsense all fail loudly with a diagnostic
/// StoreError naming the file and failing offset/record, never a silent
/// partial load. Writers stream to a temporary sibling file renamed
/// atomically into place by Finish(), so a crashed or unfinished writer
/// leaves no half-written store behind (the temporary is removed on
/// destruction). tests/store_test.cpp exercises each failure mode
/// adversarially.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dataset/datasets.h"
#include "dataset/wire.h"
#include "features/featurizer.h"
#include "features/scaler.h"

namespace tpuperf::data {

// Version 2 added the model-snapshot record types (6, 7) used by
// serve::SaveModelSnapshot; the dataset record layouts are unchanged, so
// version-1 dataset stores remain readable.
inline constexpr std::uint32_t kStoreFormatVersion = 2;
inline constexpr char kStoreMagic[8] = {'T', 'P', 'U', 'P',
                                        'E', 'R', 'F', 'D'};

/// Record types of the store framing. Dataset stores hold types 1-5; model
/// snapshot files (serve/snapshot.h) hold types 6-7 inside the same framing
/// (and are rejected with a pointer to serve::LoadModelSnapshot when fed to
/// DatasetReader::ReadAll).
inline constexpr std::uint32_t kProgramRecordType = 1;
inline constexpr std::uint32_t kTileKernelRecordType = 2;
inline constexpr std::uint32_t kFusionSampleRecordType = 3;
inline constexpr std::uint32_t kFeaturizedRecordType = 4;
inline constexpr std::uint32_t kScalerRecordType = 5;
inline constexpr std::uint32_t kModelConfigRecordType = 6;
inline constexpr std::uint32_t kModelParamsRecordType = 7;

/// Hash of the feature-extractor layout (block widths, encoded rank, opcode
/// vocabulary size). Stored in every file header; a mismatch means the
/// cached featurized matrices no longer describe what the model would see
/// and the store must be regenerated.
std::uint64_t FeatureConfigHash();

/// One kernel's raw featurization keyed by the graph hashes core's
/// PreparedCache already uses (fingerprint + structural signature for
/// collision safety).
struct FeaturizedKernel {
  std::uint64_t fingerprint = 0;
  std::uint64_t structural_sig = 0;
  feat::KernelFeatures features;
};

/// Loaded featurized records, servable as a feat::KernelFeatureSource so
/// PreparedCache and the trainers skip FeaturizeKernel on warm runs. Safe
/// for concurrent Lookup once populated; pointers stay valid for the
/// object's lifetime.
class StoredFeatures final : public feat::KernelFeatureSource {
 public:
  // Appends one record (first entry wins on exact duplicates).
  void Add(FeaturizedKernel kernel);

  const feat::KernelFeatures* Lookup(
      std::uint64_t fingerprint, std::uint64_t structural_sig) const override;

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  // Records in insertion order, for serialization.
  const std::deque<FeaturizedKernel>& entries() const noexcept {
    return entries_;
  }

 private:
  std::deque<FeaturizedKernel> entries_;  // stable addresses
  std::unordered_map<std::uint64_t, std::vector<const FeaturizedKernel*>>
      by_fingerprint_;
};

/// Corpus manifest entry: program identity survives serialization, so split
/// specs computed over the generating corpus stay meaningful for a loaded
/// dataset.
struct ProgramInfo {
  int program_id = -1;
  std::string name;
  std::string family;

  bool operator==(const ProgramInfo&) const = default;
};

/// Everything a store file holds.
struct StoreContents {
  std::vector<ProgramInfo> programs;
  TileDataset tile;
  FusionDataset fusion;
  std::shared_ptr<StoredFeatures> features =
      std::make_shared<StoredFeatures>();
  std::map<std::string, feat::FeatureScaler> scalers;
};

/// Streams records to `path`. Writes go to a temporary sibling file that is
/// atomically renamed into place by Finish(), so readers never observe a
/// half-written store; an unfinished writer removes its temporary on
/// destruction.
class DatasetWriter {
 public:
  explicit DatasetWriter(std::string path);
  ~DatasetWriter();
  DatasetWriter(const DatasetWriter&) = delete;
  DatasetWriter& operator=(const DatasetWriter&) = delete;

  void Add(const ProgramInfo& program);
  void Add(const TileKernelData& kernel);
  void Add(const FusionSample& sample);
  void Add(const FeaturizedKernel& kernel);
  void AddScaler(const std::string& name, const feat::FeatureScaler& scaler);

  // Appends one raw record (type + payload) with the standard framing
  // (size + checksum). This is how non-dataset consumers of the framing
  // (serve's model snapshots) write their record types.
  void AddRaw(std::uint32_t type, const std::string& payload);

  std::uint64_t record_count() const noexcept { return count_; }

  // Patches the record count into the header and renames the temporary
  // file to the final path. Throws StoreError on I/O failure.
  void Finish();

 private:
  void WriteRecord(std::uint32_t type, const std::string& payload);

  std::string path_;
  std::string tmp_path_;
  void* io_ = nullptr;  // platform I/O state, kept out of the header
  std::uint64_t count_ = 0;
  bool finished_ = false;
};

enum class ReadMode {
  kAuto,   // mmap when the platform supports it, else stream
  kMmap,   // require mmap (throws where unsupported)
  kStream  // buffered read
};

/// Validates the header on construction and decodes records on ReadAll().
/// Any inconsistency — bad magic, future format version, feature-config
/// mismatch, truncation, checksum or structural corruption — throws
/// StoreError with the file name and failing offset/record.
class DatasetReader {
 public:
  explicit DatasetReader(std::string path, ReadMode mode = ReadMode::kAuto);
  ~DatasetReader();
  DatasetReader(const DatasetReader&) = delete;
  DatasetReader& operator=(const DatasetReader&) = delete;

  std::uint32_t format_version() const noexcept { return version_; }
  std::uint64_t feature_config_hash() const noexcept { return feature_hash_; }
  std::uint64_t record_count() const noexcept { return count_; }
  bool mapped() const noexcept { return mapped_; }

  StoreContents ReadAll() const;

  // Walks every record, validating the framing (bounds + checksum) and
  // invoking fn(type, payload, payload_size, context) in file order.
  // ReadAll() is built on this; serve::LoadModelSnapshot uses it to decode
  // the snapshot record types. `context` names the file and record index
  // for diagnostics.
  void ForEachRecord(
      const std::function<void(std::uint32_t type, const unsigned char* payload,
                               std::size_t size, const std::string& context)>&
          fn) const;

 private:
  std::string path_;
  std::vector<unsigned char> owned_;  // stream fallback buffer
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  void* map_base_ = nullptr;
  std::size_t map_size_ = 0;
  bool mapped_ = false;
  std::uint32_t version_ = 0;
  std::uint64_t feature_hash_ = 0;
  std::uint64_t count_ = 0;
};

/// ---- Cache-directory layer (TPUPERF_DATASET_DIR) ---------------------------

/// Key identifying one concrete dataset build: task, simulated target,
/// corpus (names + graph fingerprints), generation budgets, and the feature
/// configuration. Part of the store file name, so distinct builds never
/// collide in one cache directory.
std::uint64_t DatasetCacheKey(std::string_view task, std::string_view target,
                              std::span<const ir::Program> corpus,
                              const DatasetOptions& options);

/// "<dir>/<task>_<key as 16 hex digits>.tpds".
std::string StorePath(const std::string& dir, std::string_view task,
                      std::uint64_t key);

struct StoreLoadStats {
  bool cache_hit = false;
  std::string path;       // file consulted (empty when no cache dir)
  double seconds = 0;     // wall time to load (hit) or build+write (miss)
};

/// Loads the tile-size dataset for (corpus, options, simulator target) from
/// `cache_dir` when a store exists; otherwise builds it in-process,
/// featurizes every unique kernel (sharded across core::ThreadPool), and
/// writes the store for the next run. An empty `cache_dir` means plain
/// in-process generation with no I/O and no featurization. A present but
/// corrupt store throws StoreError rather than silently rebuilding.
/// `features` (optional) receives the featurized records for registration
/// with feat::SetGlobalKernelFeatureSource.
TileDataset LoadOrBuildTileDataset(
    const std::string& cache_dir, std::span<const ir::Program> corpus,
    const sim::TpuSimulator& simulator, const DatasetOptions& options,
    std::shared_ptr<StoredFeatures>* features = nullptr,
    StoreLoadStats* stats = nullptr);

/// Fusion-task counterpart of LoadOrBuildTileDataset.
FusionDataset LoadOrBuildFusionDataset(
    const std::string& cache_dir, std::span<const ir::Program> corpus,
    const sim::TpuSimulator& simulator,
    const analytical::AnalyticalModel& analytical,
    const DatasetOptions& options,
    std::shared_ptr<StoredFeatures>* features = nullptr,
    StoreLoadStats* stats = nullptr);

}  // namespace tpuperf::data
