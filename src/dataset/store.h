/// \file
/// On-disk featurized dataset store (ROADMAP "Dataset scale-out").
///
/// The paper collects its 25M/208M-sample datasets once and reuses them
/// for every experiment (§4); Halide's learned cost model and TenSet ship
/// pre-featurized sample stores for the same reason. This store decouples
/// training scale from generation cost the same way: a dataset build
/// (simulation measurements) and its featurization (feat::FeaturizeKernel
/// graph walks) are written to disk once, and warm runs load both without
/// touching the simulator or the featurizer.
///
/// ## Record framing
///
/// File format (versioned, little-endian regardless of host):
///
///     header:  magic "TPUPERFD" (8 B) | format version u32 |
///              feature-config hash u64 | record count u64
///     record:  type u32 | payload size u64 | FNV-1a-64 checksum of
///              payload u64 | payload bytes
///
/// Records are written back to back after the header; the record count is
/// patched into the header by DatasetWriter::Finish(). Record types:
/// program info, tile-task kernels (graph + measured tile configs +
/// runtimes), fusion samples, featurized kernels (raw node features as
/// f64 + adjacency in CSR form + static perf), named feature-scaler
/// statistics, shared kernel-graph dictionary entries, and the shard
/// manifest. Unknown record types are a read error (not skipped): a
/// store is only readable by a format version >= the one that wrote it.
///
/// ## Sharding (format v3)
///
/// A DatasetWriter constructed with `max_part_bytes > 0` shards its output
/// into part files `<path>.p000`, `<path>.p001`, ... of roughly that many
/// bytes each. Every part is itself a complete, self-contained store file
/// (own header, own record count, own graph dictionary), and `<path>`
/// becomes a tiny manifest store whose single record lists each part's
/// file name, record count, byte size, and an FNV-1a-64 checksum of its
/// records region. Parts are renamed into place before the manifest, and
/// the manifest rename is the commit point: readers either see a complete
/// sharded store or (on a crashed writer) no manifest at all.
/// ReadStoreContents() reads both layouts transparently; the
/// dataset::StreamingSampler iterates parts without materializing them.
///
/// ## Graph dictionary (format v3)
///
/// Kernel graphs duplicated across records (every FusionSample of the same
/// kernel under a different tile, tile kernels repeated across shards) are
/// stored once per file as a dictionary record; kernel-bearing records
/// reference their graph by dictionary index. Dictionaries never span part
/// files, so each part stays independently readable.
///
/// ## Corruption guarantees
///
/// Readers verify the magic, reject files written by a NEWER format
/// version, reject mismatched feature-config hashes (the featurizer
/// layout changed; cached matrices would be meaningless), and verify
/// every decoded record's size and checksum — truncation, bit flips,
/// trailing garbage, and structural nonsense all fail loudly with a
/// diagnostic StoreError naming the file and failing offset/record, never
/// a silent partial load. Sharded reads additionally verify each part's
/// byte size, record count, and records-region checksum against the
/// manifest, and a missing part file is a loud error. Writers stream to a
/// temporary sibling file renamed atomically into place by Finish(), so a
/// crashed or unfinished writer leaves no half-written store behind (the
/// temporaries are removed on destruction). tests/store_test.cpp
/// exercises each failure mode adversarially.
///
/// ## Zero-copy lifetime contract
///
/// ForEachRecord / ReadRecordAt hand out RecordView spans instead of
/// copies. For an mmap-backed reader the span points straight into the
/// mapping and stays valid for the reader's lifetime. For a stream-mode
/// reader the span points into a scratch buffer owned by the reader that
/// is REUSED by the next record read: the span is valid only until the
/// next ForEachRecord callback / ReadRecordAt call (decode before moving
/// on — ReadAll and the streaming layer do). Readers are not thread-safe;
/// use one reader per thread.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dataset/datasets.h"
#include "dataset/wire.h"
#include "features/featurizer.h"
#include "features/scaler.h"

namespace tpuperf::data {

// Version 2 added the model-snapshot record types (6, 7). Version 3 added
// sharded stores (manifest record type 9) and the shared kernel-graph
// dictionary (record type 8, plus a layout tag byte in the kernel-bearing
// record payloads). Version-1/2 dataset stores and version-2 model
// snapshots remain readable.
inline constexpr std::uint32_t kStoreFormatVersion = 3;
inline constexpr char kStoreMagic[8] = {'T', 'P', 'U', 'P',
                                        'E', 'R', 'F', 'D'};

/// Record types of the store framing. Dataset stores hold types 1-5 and 8;
/// model snapshot files (serve/snapshot.h) hold types 6-7 inside the same
/// framing (and are rejected with a pointer to serve::LoadModelSnapshot
/// when fed to DatasetReader::ReadAll); sharded-store manifests hold a
/// single type-9 record.
inline constexpr std::uint32_t kProgramRecordType = 1;
inline constexpr std::uint32_t kTileKernelRecordType = 2;
inline constexpr std::uint32_t kFusionSampleRecordType = 3;
inline constexpr std::uint32_t kFeaturizedRecordType = 4;
inline constexpr std::uint32_t kScalerRecordType = 5;
inline constexpr std::uint32_t kModelConfigRecordType = 6;
inline constexpr std::uint32_t kModelParamsRecordType = 7;
inline constexpr std::uint32_t kGraphDictRecordType = 8;
inline constexpr std::uint32_t kManifestRecordType = 9;

/// Header layout: magic(8) version(4) feature_hash(8) record_count(8).
inline constexpr std::size_t kStoreHeaderSize = 28;
/// Per-record prefix: type(4) payload_size(8) checksum(8).
inline constexpr std::size_t kStoreRecordHeaderSize = 20;

/// Hash of the feature-extractor layout (block widths, encoded rank, opcode
/// vocabulary size). Stored in every file header; a mismatch means the
/// cached featurized matrices no longer describe what the model would see
/// and the store must be regenerated.
std::uint64_t FeatureConfigHash();

/// One kernel's raw featurization keyed by the graph hashes core's
/// PreparedCache already uses (fingerprint + structural signature for
/// collision safety).
struct FeaturizedKernel {
  std::uint64_t fingerprint = 0;
  std::uint64_t structural_sig = 0;
  feat::KernelFeatures features;
};

/// Loaded featurized records, servable as a feat::KernelFeatureSource so
/// PreparedCache and the trainers skip FeaturizeKernel on warm runs. Safe
/// for concurrent Lookup once populated; pointers stay valid for the
/// object's lifetime.
class StoredFeatures final : public feat::KernelFeatureSource {
 public:
  // Appends one record (first entry wins on exact duplicates).
  void Add(FeaturizedKernel kernel);

  const feat::KernelFeatures* Lookup(
      std::uint64_t fingerprint, std::uint64_t structural_sig) const override;

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  // Records in insertion order, for serialization.
  const std::deque<FeaturizedKernel>& entries() const noexcept {
    return entries_;
  }

 private:
  std::deque<FeaturizedKernel> entries_;  // stable addresses
  std::unordered_map<std::uint64_t, std::vector<const FeaturizedKernel*>>
      by_fingerprint_;
};

/// Corpus manifest entry: program identity survives serialization, so split
/// specs computed over the generating corpus stay meaningful for a loaded
/// dataset.
struct ProgramInfo {
  int program_id = -1;
  std::string name;
  std::string family;

  bool operator==(const ProgramInfo&) const = default;
};

/// Everything a store file holds.
struct StoreContents {
  std::vector<ProgramInfo> programs;
  TileDataset tile;
  FusionDataset fusion;
  std::shared_ptr<StoredFeatures> features =
      std::make_shared<StoredFeatures>();
  std::map<std::string, feat::FeatureScaler> scalers;
};

/// Streams records to `path`. Writes go to temporary sibling files
/// atomically renamed into place by Finish(), so readers never observe a
/// half-written store; an unfinished writer removes its temporaries on
/// destruction. With `max_part_bytes > 0` the output is sharded (see the
/// file comment); the manifest rename is then the commit point.
class DatasetWriter {
 public:
  explicit DatasetWriter(std::string path, std::uint64_t max_part_bytes = 0);
  ~DatasetWriter();
  DatasetWriter(const DatasetWriter&) = delete;
  DatasetWriter& operator=(const DatasetWriter&) = delete;

  void Add(const ProgramInfo& program);
  void Add(const TileKernelData& kernel);
  void Add(const FusionSample& sample);
  void Add(const FeaturizedKernel& kernel);
  void AddScaler(const std::string& name, const feat::FeatureScaler& scaler);

  // Appends one raw record (type + payload) with the standard framing
  // (size + checksum). This is how non-dataset consumers of the framing
  // (serve's model snapshots) write their record types.
  void AddRaw(std::uint32_t type, const std::string& payload);

  // Total records written so far, across all parts (dictionary records
  // included).
  std::uint64_t record_count() const noexcept { return count_; }
  // Parts this store occupies so far (1 for an unsharded store).
  std::size_t part_count() const noexcept;

  // Patches the record count(s) into the header(s), renames the temporary
  // file(s) to the final path(s), and — for a sharded store — commits the
  // manifest last. Throws StoreError on I/O failure.
  void Finish();

 private:
  struct Part;  // one open part sink (platform I/O state), in the .cpp
  struct PartInfo {
    std::string file;               // final basename
    std::uint64_t records = 0;      // framing record count
    std::uint64_t bytes = 0;        // total file size
    std::uint64_t records_fnv = 0;  // FNV-1a-64 of bytes [header, end)
  };

  void OpenPart();
  // Patches the open part's record count, closes and renames it, and
  // appends its PartInfo.
  void ClosePart();
  // Sharded mode: rolls to a new part when the open one is full.
  void MaybeRoll();
  void WriteRecord(std::uint32_t type, const std::string& payload);
  // Dictionary index of this kernel's graph in the open part, emitting the
  // dictionary record on first use.
  std::uint32_t DictIndexFor(const KernelRecord& record);

  std::string path_;
  std::uint64_t max_part_bytes_ = 0;  // 0 = unsharded single file
  std::unique_ptr<Part> part_;
  std::vector<PartInfo> parts_;  // closed parts (sharded mode)
  // (fingerprint, structural signature) -> dict index, per open part.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t> dict_;
  std::uint64_t count_ = 0;
  bool finished_ = false;
};

enum class ReadMode {
  kAuto,   // mmap when the platform supports it, else stream
  kMmap,   // require mmap (throws where unsupported)
  kStream  // incremental fd reads with a per-record scratch buffer
};

/// One record of a store file, as handed to ForEachRecord callbacks and
/// returned by ReadRecordAt. See the zero-copy lifetime contract in the
/// file comment: `payload` aliases the mapping (mmap readers, valid for
/// the reader's lifetime) or the reader's reusable scratch buffer (stream
/// readers, valid until the next record is read).
struct RecordView {
  std::uint32_t type = 0;
  std::span<const unsigned char> payload;
  std::uint64_t offset = 0;  // byte offset of the record header in the file
  std::string context;       // "<path>: record <r>" for diagnostics
};

/// Validates the header on construction and decodes records on ReadAll().
/// Any inconsistency — bad magic, future format version, feature-config
/// mismatch, truncation, checksum or structural corruption — throws
/// StoreError with the file name and failing offset/record. Not
/// thread-safe (stream readers share one scratch buffer).
class DatasetReader {
 public:
  explicit DatasetReader(std::string path, ReadMode mode = ReadMode::kAuto);
  ~DatasetReader();
  DatasetReader(const DatasetReader&) = delete;
  DatasetReader& operator=(const DatasetReader&) = delete;

  std::uint32_t format_version() const noexcept { return version_; }
  std::uint64_t feature_config_hash() const noexcept { return feature_hash_; }
  std::uint64_t record_count() const noexcept { return count_; }
  bool mapped() const noexcept { return mapped_; }
  const std::string& path() const noexcept { return path_; }

  // True when this file is a sharded-store manifest (a single manifest
  // record). Read it with ReadStoreContents / ReadStoreManifest — ReadAll
  // on a manifest throws with that pointer.
  bool sharded_manifest() const noexcept;

  // Decodes this one file's records into StoreContents. For a sharded
  // store open the MANIFEST path with ReadStoreContents instead.
  StoreContents ReadAll() const;

  // Walks records in file order, validating framing bounds for every
  // record and the payload checksum for every DELIVERED record, invoking
  // fn(view) for records whose type is in `types` (empty = all). Records
  // filtered out are skipped without reading their payload — a stream
  // reader seeks past them instead of buffering them.
  void ForEachRecord(const std::function<void(const RecordView&)>& fn,
                     std::span<const std::uint32_t> types = {}) const;

  // Framing-only walk: validates record-header bounds and invokes
  // fn(type, offset, payload_size) without reading, checksumming, or
  // buffering any payload. The streaming layer builds its record index
  // with this.
  void ScanRecords(
      const std::function<void(std::uint32_t type, std::uint64_t offset,
                               std::uint64_t payload_size)>& fn) const;

  // Random access: reads and checksum-verifies the record whose header
  // starts at `offset` (an offset previously produced by ScanRecords /
  // ForEachRecord). Subject to the same lifetime contract as ForEachRecord.
  RecordView ReadRecordAt(std::uint64_t offset) const;

 private:
  // Returns a pointer to `size` bytes at `offset`, either directly into
  // the mapping or via pread into the given scratch vector.
  const unsigned char* BytesAt(std::uint64_t offset, std::size_t size,
                               std::vector<unsigned char>& scratch) const;

  std::string path_;
  std::vector<unsigned char> owned_;  // non-POSIX stream fallback buffer
  mutable std::vector<unsigned char> scratch_;         // payload buffer
  mutable std::vector<unsigned char> header_scratch_;  // record headers
  const unsigned char* data_ = nullptr;  // mmap/owned base; null in fd mode
  std::size_t size_ = 0;                 // total file size
  int fd_ = -1;                          // POSIX stream mode descriptor
  void* map_base_ = nullptr;
  std::size_t map_size_ = 0;
  bool mapped_ = false;
  std::uint32_t version_ = 0;
  std::uint64_t feature_hash_ = 0;
  std::uint64_t count_ = 0;
  std::uint32_t first_record_type_ = 0;  // 0 when the store is empty
};

/// ---- Sharded stores --------------------------------------------------------

struct StorePartInfo {
  std::string file;               // basename, sibling of the manifest
  std::uint64_t records = 0;      // framing record count of the part
  std::uint64_t bytes = 0;        // part file size in bytes
  std::uint64_t records_fnv = 0;  // FNV-1a-64 of bytes [header, end)
};

struct StoreManifest {
  std::vector<StorePartInfo> parts;
};

/// Decodes the manifest record of a sharded store. Throws StoreError when
/// `reader` is not a sharded manifest.
StoreManifest ReadStoreManifest(const DatasetReader& reader);

/// Resolves a manifest part's file name next to the manifest itself.
std::string StorePartPath(const std::string& manifest_path,
                          const std::string& part_file);

/// Reads a dataset store — sharded or single-file — into StoreContents.
/// For sharded stores every part's existence, byte size, record count, and
/// records-region checksum are verified against the manifest; any mismatch
/// or missing part throws StoreError. This is the load path LoadOrBuild*
/// uses.
StoreContents ReadStoreContents(const std::string& path,
                                ReadMode mode = ReadMode::kAuto);

/// ---- Record-level decode (shared with dataset/streaming) -------------------

/// The shared kernel graphs of one store file, in dictionary-record order.
class GraphDict {
 public:
  struct Entry {
    ir::Kernel kernel;
    std::uint64_t fingerprint = 0;
    std::uint64_t structural_sig = 0;
  };

  // Decodes and appends one kGraphDictRecordType record.
  void Add(const RecordView& record);
  const Entry& At(std::uint32_t index, const std::string& context) const;
  std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::deque<Entry> entries_;
};

/// Decode one record of the given type; `version` is the file's format
/// version (kernel-bearing payloads gained a layout tag in v3), `dict` the
/// file's graph dictionary populated from earlier records.
TileKernelData DecodeTileKernelRecord(const RecordView& record,
                                      std::uint32_t version,
                                      const GraphDict& dict);
FusionSample DecodeFusionSampleRecord(const RecordView& record,
                                      std::uint32_t version,
                                      const GraphDict& dict);
FeaturizedKernel DecodeFeaturizedRecord(const RecordView& record);
/// The (fingerprint, structural signature) key of a featurized record,
/// from its first 16 payload bytes — no full decode.
std::pair<std::uint64_t, std::uint64_t> PeekFeaturizedKey(
    const RecordView& record);

/// ---- Cache-directory layer (TPUPERF_DATASET_DIR) ---------------------------

/// Key identifying one concrete dataset build: task, simulated target,
/// corpus (names + graph fingerprints + the CorpusOptions that generated
/// it), generation budgets, and the feature configuration. Part of the
/// store file name, so distinct builds never collide in one cache
/// directory. The corpus scale/seed matter because tier extension grows a
/// corpus in place: two scales sharing a program prefix must not alias.
/// DatasetOptions::store_part_bytes is deliberately NOT hashed (sharding
/// is a storage layout, not a different dataset).
std::uint64_t DatasetCacheKey(std::string_view task, std::string_view target,
                              std::span<const ir::Program> corpus,
                              const DatasetOptions& options);

/// "<dir>/<task>_<key as 16 hex digits>.tpds".
std::string StorePath(const std::string& dir, std::string_view task,
                      std::uint64_t key);

struct StoreLoadStats {
  bool cache_hit = false;
  std::string path;       // file consulted (empty when no cache dir)
  double seconds = 0;     // wall time to load (hit) or build+write (miss)
};

/// Loads the tile-size dataset for (corpus, options, simulator target) from
/// `cache_dir` when a store exists; otherwise builds it in-process,
/// featurizes every unique kernel (sharded across core::ThreadPool), and
/// writes the store for the next run (sharded when
/// options.store_part_bytes > 0). An empty `cache_dir` means plain
/// in-process generation with no I/O and no featurization. A present but
/// corrupt store throws StoreError rather than silently rebuilding.
/// `features` (optional) receives the featurized records for registration
/// with feat::SetGlobalKernelFeatureSource.
TileDataset LoadOrBuildTileDataset(
    const std::string& cache_dir, std::span<const ir::Program> corpus,
    const sim::TpuSimulator& simulator, const DatasetOptions& options,
    std::shared_ptr<StoredFeatures>* features = nullptr,
    StoreLoadStats* stats = nullptr);

/// Fusion-task counterpart of LoadOrBuildTileDataset.
FusionDataset LoadOrBuildFusionDataset(
    const std::string& cache_dir, std::span<const ir::Program> corpus,
    const sim::TpuSimulator& simulator,
    const analytical::AnalyticalModel& analytical,
    const DatasetOptions& options,
    std::shared_ptr<StoredFeatures>* features = nullptr,
    StoreLoadStats* stats = nullptr);

}  // namespace tpuperf::data
