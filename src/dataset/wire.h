/// \file
/// Little-endian wire encoding shared by every consumer of the dataset
/// store's record framing (dataset/store.cpp and serve's model snapshots).
/// Values are encoded little-endian regardless of host byte order; the
/// bounds-checked decoder names the record a malformed read happened in.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace tpuperf::data {

/// Thrown on any malformed, truncated, corrupted, or incompatible store
/// file. The message names the file and what failed.
class StoreError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// FNV-1a 64-bit offset basis; seed for Fnv1a64Continue chains.
inline constexpr std::uint64_t kFnv1a64Seed = 1469598103934665603ull;

/// Continues an FNV-1a 64-bit hash over another span of bytes. Writers use
/// this to maintain a running checksum of a part file's records region
/// (everything after the header) without re-reading what they wrote.
inline std::uint64_t Fnv1a64Continue(std::uint64_t h, const void* data,
                                     std::size_t size) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// FNV-1a 64-bit — the per-record payload checksum of the store framing.
inline std::uint64_t Fnv1a64(const void* data, std::size_t size) noexcept {
  return Fnv1a64Continue(kFnv1a64Seed, data, size);
}

inline std::uint32_t ReadU32At(const unsigned char* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

inline std::uint64_t ReadU64At(const unsigned char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

/// Append-only little-endian encoder building one record payload.
class Enc {
 public:
  void U8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void I32(std::int32_t v) { U32(static_cast<std::uint32_t>(v)); }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void F32(float v) { U32(std::bit_cast<std::uint32_t>(v)); }
  void F64(double v) { U64(std::bit_cast<std::uint64_t>(v)); }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }

  const std::string& bytes() const noexcept { return out_; }

 private:
  std::string out_;
};

/// Bounds-checked little-endian decoder; every overrun names the record it
/// happened in.
class Dec {
 public:
  Dec(const unsigned char* data, std::size_t size, std::string context)
      : data_(data), size_(size), context_(std::move(context)) {}

  std::uint8_t U8() {
    Require(1);
    return data_[off_++];
  }
  std::uint32_t U32() {
    Require(4);
    const std::uint32_t v = ReadU32At(data_ + off_);
    off_ += 4;
    return v;
  }
  std::uint64_t U64() {
    Require(8);
    const std::uint64_t v = ReadU64At(data_ + off_);
    off_ += 8;
    return v;
  }
  std::int32_t I32() { return static_cast<std::int32_t>(U32()); }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  float F32() { return std::bit_cast<float>(U32()); }
  double F64() { return std::bit_cast<double>(U64()); }
  std::string Str() {
    const std::uint32_t n = U32();
    Require(n);
    std::string s(reinterpret_cast<const char*>(data_ + off_), n);
    off_ += n;
    return s;
  }

  bool AtEnd() const noexcept { return off_ == size_; }
  std::size_t remaining() const noexcept { return size_ - off_; }
  const std::string& context() const noexcept { return context_; }

  // Guards element counts read from the payload before any allocation: a
  // crafted count whose elements (>= `min_bytes` each) could not possibly
  // fit the remaining bytes must fail loudly instead of attempting a
  // multi-GB resize.
  void RequireCount(std::uint64_t count, std::size_t min_bytes,
                    const char* what) const {
    if (count > remaining() / min_bytes) {
      throw StoreError(context_ + ": " + what + " count " +
                       std::to_string(count) +
                       " exceeds the record payload (corrupt store)");
    }
  }

  [[noreturn]] void Fail(const std::string& what) const {
    throw StoreError(context_ + ": " + what);
  }

 private:
  void Require(std::size_t n) const {
    if (off_ + n > size_) {
      throw StoreError(context_ + ": payload overrun at byte " +
                       std::to_string(off_) + " (corrupt or truncated record)");
    }
  }

  const unsigned char* data_;
  std::size_t size_;
  std::size_t off_ = 0;
  std::string context_;
};

}  // namespace tpuperf::data
