// Synthetic XLA program corpus (paper §4).
//
// The paper's dataset is "104 XLA programs used in production or commonly in
// research". This generator reproduces the corpus structure with 18 model
// families named after the paper's benchmarks — convolutional vision models
// (ResNet v1/v2, Inception, AlexNet, SSD), sequence models (NMT, Translate,
// Transformer LM, RNN LM, WaveRNN, auto-completion, SmartCompose,
// Char2Feats), generative/conv-seq hybrids (ConvDraw, Feats2Wave), and
// dense recommendation/retrieval models (DLRM, Ranking, ImageEmbed) — each
// expanded into depth/width/batch variants.
//
// The family imbalance of §4 ("many variations of ResNet models, but just
// one AlexNet model and one DLRM model") is reproduced deliberately: the
// trainer must draw examples evenly per family to cope.
#pragma once

#include <vector>

#include "ir/program.h"

namespace tpuperf::data {

// Generates the full 104-program corpus, deterministically.
std::vector<ir::Program> GenerateCorpus();

// Family names in generation order (18 families).
std::vector<std::string> FamilyNames();

// Builds a single small program of the given family and variant, for tests
// and examples. Throws std::invalid_argument on unknown family names.
ir::Program BuildProgram(const std::string& family, int variant);

}  // namespace tpuperf::data
