// Synthetic XLA program corpus (paper §4).
//
// The paper's dataset is "104 XLA programs used in production or commonly in
// research". This generator reproduces the corpus structure with 18 model
// families named after the paper's benchmarks — convolutional vision models
// (ResNet v1/v2, Inception, AlexNet, SSD), sequence models (NMT, Translate,
// Transformer LM, RNN LM, WaveRNN, auto-completion, SmartCompose,
// Char2Feats), generative/conv-seq hybrids (ConvDraw, Feats2Wave), and
// dense recommendation/retrieval models (DLRM, Ranking, ImageEmbed) — each
// expanded into depth/width/batch variants.
//
// The family imbalance of §4 ("many variations of ResNet models, but just
// one AlexNet model and one DLRM model") is reproduced deliberately: the
// trainer must draw examples evenly per family to cope.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/program.h"

namespace tpuperf::data {

// Generates the full 104-program corpus, deterministically.
std::vector<ir::Program> GenerateCorpus();

// Corpus scale-up knobs (ROADMAP "Dataset scale-out"). Every family's
// variant space extends past its base grid into tiers: tier t of a family
// re-runs the base depth/width/batch grid with one extra knob the base grid
// never varies (input resolution, unroll depth, sequence length, ...), so
// extended variants are structurally distinct from every base variant and
// from each other.
struct CorpusOptions {
  // Multiplies each family's variant count; 4.0 generates the ~4x corpus
  // (416 programs). Values <= 1 keep the base 104-program corpus — the
  // split methods need at least one variant per family.
  double scale = 1.0;
  // Selects which window of the extension space the extra variants come
  // from. Identical seeds always generate identical corpora.
  std::uint64_t seed = 0;
};

// Generates the scaled corpus, deterministically per (scale, seed). With
// the default options this is exactly GenerateCorpus().
std::vector<ir::Program> GenerateCorpus(const CorpusOptions& options);

// Family names in generation order (18 families).
std::vector<std::string> FamilyNames();

// Builds a single small program of the given family and variant, for tests
// and examples. Variants beyond the family's base grid are valid and
// address the extension tiers (see CorpusOptions). Throws
// std::invalid_argument on unknown family names or negative variants.
ir::Program BuildProgram(const std::string& family, int variant);

}  // namespace tpuperf::data
