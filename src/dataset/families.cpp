#include "dataset/families.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>

#include "ir/builder.h"

namespace tpuperf::data {
namespace {

using ir::GraphBuilder;
using ir::NodeId;
using ir::OpCode;
using ir::Padding;
using ir::Shape;

// Splits a variant index into its base-grid index and extension tier. Tier
// 0 is the original depth/width/batch grid; tier t >= 1 re-runs that grid
// with one extra structural knob (per family) that no base variant touches,
// so every (base, tier) pair builds a structurally distinct program.
struct VariantTier {
  int base = 0;
  int tier = 0;
};

VariantTier SplitVariant(int variant, int base_variants) {
  return {variant % base_variants, variant / base_variants};
}

// ---- Reusable model sub-blocks -------------------------------------------

NodeId ConvBnRelu(GraphBuilder& b, NodeId x, std::int64_t filters,
                  std::int64_t k, std::int64_t stride,
                  Padding pad = Padding::kSame) {
  const std::int64_t cin = b.shape_of(x).dim(3);
  const NodeId w = b.Parameter(Shape({k, k, cin, filters}));
  NodeId y = b.Conv2d(x, w, stride, pad);
  const NodeId scale = b.Parameter(Shape({filters}));
  const NodeId offset = b.Parameter(Shape({filters}));
  y = b.BatchNorm(y, scale, offset);
  return b.Relu(y);
}

NodeId ResidualBlockV1(GraphBuilder& b, NodeId x, std::int64_t filters) {
  NodeId y = ConvBnRelu(b, x, filters, 3, 1);
  const std::int64_t cin = b.shape_of(y).dim(3);
  const NodeId w = b.Parameter(Shape({3, 3, cin, filters}));
  y = b.Conv2d(y, w, 1, Padding::kSame);
  const NodeId scale = b.Parameter(Shape({filters}));
  const NodeId offset = b.Parameter(Shape({filters}));
  y = b.BatchNorm(y, scale, offset);
  NodeId shortcut = x;
  if (b.shape_of(x).dim(3) != filters) {
    const NodeId pw = b.Parameter(Shape({1, 1, b.shape_of(x).dim(3), filters}));
    shortcut = b.Conv2d(x, pw, 1, Padding::kSame);
  }
  return b.Relu(b.Binary(OpCode::kAdd, y, shortcut));
}

// Pre-activation variant (ResNet v2 ordering).
NodeId ResidualBlockV2(GraphBuilder& b, NodeId x, std::int64_t filters) {
  const std::int64_t cin = b.shape_of(x).dim(3);
  const NodeId s1 = b.Parameter(Shape({cin}));
  const NodeId o1 = b.Parameter(Shape({cin}));
  NodeId y = b.Relu(b.BatchNorm(x, s1, o1));
  const NodeId w1 = b.Parameter(Shape({3, 3, cin, filters}));
  y = b.Conv2d(y, w1, 1, Padding::kSame);
  const NodeId s2 = b.Parameter(Shape({filters}));
  const NodeId o2 = b.Parameter(Shape({filters}));
  y = b.Relu(b.BatchNorm(y, s2, o2));
  const NodeId w2 = b.Parameter(Shape({3, 3, filters, filters}));
  y = b.Conv2d(y, w2, 1, Padding::kSame);
  NodeId shortcut = x;
  if (cin != filters) {
    const NodeId pw = b.Parameter(Shape({1, 1, cin, filters}));
    shortcut = b.Conv2d(x, pw, 1, Padding::kSame);
  }
  return b.Binary(OpCode::kAdd, y, shortcut);
}

// Mean + variance layer normalization built from primitives (~12 nodes).
NodeId LayerNormish(GraphBuilder& b, NodeId x) {
  const Shape& s = b.shape_of(x);
  const std::int64_t d = s.dim(s.rank() - 1);
  NodeId mean = b.Reduce(x, {s.rank() - 1});
  mean = b.Binary(OpCode::kMultiply, mean,
                  b.Constant(b.shape_of(mean)));  // 1/d scaling constant
  NodeId centered = b.Binary(OpCode::kSubtract, x, b.Broadcast(mean, s));
  NodeId var = b.Reduce(b.Binary(OpCode::kMultiply, centered, centered),
                        {s.rank() - 1});
  NodeId inv = b.Unary(OpCode::kRsqrt,
                       b.Binary(OpCode::kAdd, var, b.Constant(b.shape_of(var))));
  NodeId normed = b.Binary(OpCode::kMultiply, centered, b.Broadcast(inv, s));
  const NodeId gain = b.Parameter(Shape({d}));
  normed = b.Binary(OpCode::kMultiply, normed, b.Broadcast(gain, s));
  const NodeId bias = b.Parameter(Shape({d}));
  return b.Binary(OpCode::kAdd, normed, b.Broadcast(bias, s));
}

// One LSTM cell step over [batch, in] with hidden size h.
struct LstmState {
  NodeId h;
  NodeId c;
};

LstmState LstmCell(GraphBuilder& b, NodeId x, LstmState state,
                   std::int64_t hidden) {
  const auto gate = [&](OpCode activation) {
    NodeId xw = b.Dot(x, b.Parameter(Shape({b.shape_of(x).dim(1), hidden})));
    NodeId hw = b.Dot(state.h,
                      b.Parameter(Shape({b.shape_of(state.h).dim(1), hidden})));
    NodeId z = b.Binary(OpCode::kAdd, xw, hw);
    z = b.AddBias(z, b.Parameter(Shape({hidden})));
    return b.Unary(activation, z);
  };
  const NodeId i = gate(OpCode::kLogistic);
  const NodeId f = gate(OpCode::kLogistic);
  const NodeId g = gate(OpCode::kTanh);
  const NodeId o = gate(OpCode::kLogistic);
  LstmState next;
  next.c = b.Binary(OpCode::kAdd, b.Binary(OpCode::kMultiply, f, state.c),
                    b.Binary(OpCode::kMultiply, i, g));
  next.h = b.Binary(OpCode::kMultiply, o, b.Unary(OpCode::kTanh, next.c));
  return next;
}

// Single-head scaled-dot attention over [n, d] sequences.
NodeId AttentionBlock(GraphBuilder& b, NodeId x) {
  const std::int64_t d = b.shape_of(x).dim(1);
  NodeId q = b.Dot(x, b.Parameter(Shape({d, d})));
  NodeId k = b.Dot(x, b.Parameter(Shape({d, d})));
  NodeId v = b.Dot(x, b.Parameter(Shape({d, d})));
  NodeId scores = b.Dot(q, b.Transpose(k, {1, 0}));
  scores = b.Binary(OpCode::kMultiply, scores, b.Constant(b.shape_of(scores)));
  NodeId attn = b.Softmax(scores);
  NodeId ctx = b.Dot(attn, v);
  NodeId merged = b.Dot(ctx, b.Parameter(Shape({d, d})));
  return b.Binary(OpCode::kAdd, x, merged);
}

NodeId TransformerBlock(GraphBuilder& b, NodeId x) {
  NodeId h = AttentionBlock(b, LayerNormish(b, x));
  const std::int64_t d = b.shape_of(h).dim(1);
  NodeId f = LayerNormish(b, h);
  f = b.Dense(f, 2 * d, /*relu=*/true);
  f = b.Dense(f, d, /*relu=*/false);
  return b.Binary(OpCode::kAdd, h, f);
}

// 1-D convolution over sequences represented as [batch, 1, time, channels].
NodeId Conv1d(GraphBuilder& b, NodeId x, std::int64_t filters, std::int64_t k,
              std::int64_t stride) {
  const std::int64_t cin = b.shape_of(x).dim(3);
  const NodeId w = b.Parameter(Shape({1, k, cin, filters}));
  return b.Relu(b.Conv2d(x, w, stride, Padding::kSame));
}

// ---- Family builders -------------------------------------------------------

ir::Program ResNetV1(int variant) {
  const auto [v, tier] = SplitVariant(variant, 12);
  const std::int64_t batches[] = {32, 64, 128, 256};
  const int depths[] = {2, 3, 4};
  const std::int64_t batch = batches[v % 4];
  const int blocks_per_stage = depths[(v / 4) % 3];
  const std::int64_t res = 32 + 8 * tier;  // tiers grow input resolution
  GraphBuilder b;
  NodeId x = b.Parameter(Shape({batch, res, res, 3}));
  NodeId h = ConvBnRelu(b, x, 16, 3, 1);
  std::int64_t filters = 16;
  for (int stage = 0; stage < 3; ++stage) {
    for (int block = 0; block < blocks_per_stage; ++block) {
      h = ResidualBlockV1(b, h, filters);
    }
    if (stage < 2) {
      h = b.Pool2d(h, 2, 2);
      filters *= 2;
    }
  }
  h = b.Reduce(h, {1, 2});  // global average pool
  h = b.Dense(h, 10, /*relu=*/false);
  NodeId out = b.Softmax(h);
  b.MarkOutput(out);
  return ir::Program{"resnet_v1_v" + std::to_string(variant), "ResNetV1",
                     std::move(b).Build()};
}

ir::Program ResNetV2(int variant) {
  const auto [v, tier] = SplitVariant(variant, 10);
  const std::int64_t batches[] = {16, 32, 64, 128, 256};
  const std::int64_t batch = batches[v % 5];
  const int blocks_per_stage = 2 + (v / 5) % 2;
  const std::int64_t res = 32 + 8 * tier;
  GraphBuilder b;
  NodeId x = b.Parameter(Shape({batch, res, res, 3}));
  NodeId h = ConvBnRelu(b, x, 16, 3, 1);
  std::int64_t filters = 16;
  for (int stage = 0; stage < 3; ++stage) {
    for (int block = 0; block < blocks_per_stage; ++block) {
      h = ResidualBlockV2(b, h, filters);
    }
    if (stage < 2) {
      h = b.Pool2d(h, 2, 2);
      filters *= 2;
    }
  }
  h = b.Reduce(h, {1, 2});
  h = b.Dense(h, 10, /*relu=*/false);
  b.MarkOutput(b.Softmax(h));
  return ir::Program{"resnet_v2_v" + std::to_string(variant), "ResNetV2",
                     std::move(b).Build()};
}

ir::Program InceptionLike(int variant) {
  const auto [v, tier] = SplitVariant(variant, 8);
  const std::int64_t batch = (v % 2 == 0) ? 32 : 64;
  const int num_blocks = 2 + (v / 2) % 2;
  const std::int64_t width = (v / 4 == 0) ? 16 : 32;
  const std::int64_t res = 32 + 8 * tier;
  GraphBuilder b;
  NodeId x = b.Parameter(Shape({batch, res, res, 3}));
  NodeId h = ConvBnRelu(b, x, width, 3, 1);
  for (int block = 0; block < num_blocks; ++block) {
    const NodeId b1 = ConvBnRelu(b, h, width, 1, 1);
    const NodeId b3 = ConvBnRelu(b, ConvBnRelu(b, h, width / 2, 1, 1), width, 3, 1);
    const NodeId b5 = ConvBnRelu(b, ConvBnRelu(b, h, width / 2, 1, 1), width, 5, 1);
    const std::int64_t cin = b.shape_of(h).dim(3);
    const NodeId pw = b.Parameter(Shape({1, 1, cin, width}));
    const NodeId bp = b.Conv2d(h, pw, 1, Padding::kSame);
    h = b.Concatenate({b1, b3, b5, bp}, 3);
  }
  h = b.Reduce(h, {1, 2});
  h = b.Dense(h, 100, /*relu=*/false);
  b.MarkOutput(b.Softmax(h));
  return ir::Program{"inception_v" + std::to_string(variant), "InceptionLike",
                     std::move(b).Build()};
}

ir::Program AlexNetLike(int variant) {
  const int tier = variant;  // one base variant; tiers grow the batch
  GraphBuilder b;
  NodeId x = b.Parameter(Shape({64 + 32 * tier, 56, 56, 3}));
  NodeId h = ConvBnRelu(b, x, 48, 11, 4, Padding::kValid);
  h = b.Pool2d(h, 3, 2);
  h = ConvBnRelu(b, h, 128, 5, 1);
  h = b.Pool2d(h, 2, 2);
  h = ConvBnRelu(b, h, 192, 3, 1);
  h = ConvBnRelu(b, h, 128, 3, 1);
  const Shape& s = b.shape_of(h);
  h = b.Reshape(h, Shape({s.dim(0), s.dim(1) * s.dim(2) * s.dim(3)}));
  h = b.Dense(h, 512);
  h = b.Dense(h, 256);
  h = b.Dense(h, 100, /*relu=*/false);
  b.MarkOutput(b.Softmax(h));
  return ir::Program{"alexnet_v" + std::to_string(variant), "AlexNetLike",
                     std::move(b).Build()};
}

ir::Program SsdLike(int variant) {
  const auto [v, tier] = SplitVariant(variant, 6);
  const std::int64_t batch = 8 * (1 + v % 3);
  const std::int64_t width = (v / 3 == 0) ? 24 : 40;
  const std::int64_t res = 64 + 16 * tier;
  GraphBuilder b;
  NodeId x = b.Parameter(Shape({batch, res, res, 3}));
  NodeId h = ConvBnRelu(b, x, width, 3, 2);
  std::vector<NodeId> head_outputs;
  std::int64_t filters = width;
  for (int scale = 0; scale < 3; ++scale) {
    h = ConvBnRelu(b, h, filters, 3, 1);
    // Class + box heads at this scale.
    const std::int64_t cin = b.shape_of(h).dim(3);
    const NodeId cls_w = b.Parameter(Shape({3, 3, cin, 12}));
    NodeId cls = b.Conv2d(h, cls_w, 1, Padding::kSame);
    const NodeId box_w = b.Parameter(Shape({3, 3, cin, 16}));
    NodeId box = b.Conv2d(h, box_w, 1, Padding::kSame);
    const Shape& cs = b.shape_of(cls);
    cls = b.Reshape(cls, Shape({cs.dim(0), cs.dim(1) * cs.dim(2) * cs.dim(3)}));
    const Shape& bs = b.shape_of(box);
    box = b.Reshape(box, Shape({bs.dim(0), bs.dim(1) * bs.dim(2) * bs.dim(3)}));
    head_outputs.push_back(cls);
    head_outputs.push_back(box);
    h = b.Pool2d(h, 2, 2);
    filters += width / 2;
  }
  NodeId merged = b.Concatenate(head_outputs, 1);
  b.MarkOutput(b.Unary(OpCode::kLogistic, merged));
  return ir::Program{"ssd_v" + std::to_string(variant), "SSDLike",
                     std::move(b).Build()};
}

ir::Program Nmt(int variant) {
  const auto [v, tier] = SplitVariant(variant, 8);
  const std::int64_t batch = (v % 2 == 0) ? 16 : 32;
  const std::int64_t hidden = (v / 2 % 2 == 0) ? 128 : 256;
  // Base steps are 3/4; tiers add 2 so the parity chains never collide.
  const int steps = 3 + (v / 4) % 2 + 2 * tier;
  GraphBuilder b;
  LstmState enc{b.Parameter(Shape({batch, hidden})),
                b.Parameter(Shape({batch, hidden}))};
  std::vector<NodeId> enc_states;
  for (int t = 0; t < steps; ++t) {
    const NodeId x = b.Parameter(Shape({batch, hidden}));
    enc = LstmCell(b, x, enc, hidden);
    enc_states.push_back(enc.h);
  }
  // Attention over encoder states.
  NodeId memory = b.Concatenate(enc_states, 0);  // [steps*batch, hidden]
  NodeId query = b.Dot(enc.h, b.Parameter(Shape({hidden, hidden})));
  NodeId scores = b.Dot(query, b.Transpose(memory, {1, 0}));
  NodeId attn = b.Softmax(scores);
  NodeId ctx = b.Dot(attn, memory);
  // Decoder step + projection.
  LstmState dec{ctx, b.Parameter(Shape({batch, hidden}))};
  dec = LstmCell(b, enc.h, dec, hidden);
  NodeId logits = b.Dense(dec.h, 512, /*relu=*/false);
  b.MarkOutput(b.Softmax(logits));
  return ir::Program{"nmt_v" + std::to_string(variant), "NMT",
                     std::move(b).Build()};
}

ir::Program TranslateLike(int variant) {
  const auto [v, tier] = SplitVariant(variant, 6);
  const std::int64_t batch = 16 + 16 * (v % 3);
  const std::int64_t hidden = (v / 3 == 0) ? 128 : 192;
  const int layers = 3 + tier;
  GraphBuilder b;
  NodeId x = b.Parameter(Shape({batch, hidden}));
  // Stacked GRU-ish cells.
  NodeId h = b.Parameter(Shape({batch, hidden}));
  for (int layer = 0; layer < layers; ++layer) {
    NodeId z = b.Unary(
        OpCode::kLogistic,
        b.Binary(OpCode::kAdd,
                 b.Dot(x, b.Parameter(Shape({hidden, hidden}))),
                 b.Dot(h, b.Parameter(Shape({hidden, hidden})))));
    NodeId r = b.Unary(
        OpCode::kLogistic,
        b.Binary(OpCode::kAdd,
                 b.Dot(x, b.Parameter(Shape({hidden, hidden}))),
                 b.Dot(h, b.Parameter(Shape({hidden, hidden})))));
    NodeId cand = b.Unary(
        OpCode::kTanh,
        b.Binary(OpCode::kAdd,
                 b.Dot(x, b.Parameter(Shape({hidden, hidden}))),
                 b.Dot(b.Binary(OpCode::kMultiply, r, h),
                       b.Parameter(Shape({hidden, hidden})))));
    const NodeId ones = b.Constant(b.shape_of(z));
    NodeId keep = b.Binary(OpCode::kSubtract, ones, z);
    h = b.Binary(OpCode::kAdd, b.Binary(OpCode::kMultiply, keep, h),
                 b.Binary(OpCode::kMultiply, z, cand));
    x = h;
  }
  NodeId logits = b.Dense(h, 1024, /*relu=*/false);
  b.MarkOutput(b.Softmax(logits));
  return ir::Program{"translate_v" + std::to_string(variant), "TranslateLike",
                     std::move(b).Build()};
}

ir::Program TransformerLm(int variant) {
  const auto [v, tier] = SplitVariant(variant, 8);
  // +40 per tier keeps the 64- and 128-token chains disjoint at every tier.
  const std::int64_t tokens = ((v % 2 == 0) ? 64 : 128) + 40 * tier;
  const std::int64_t dmodel = (v / 2 % 2 == 0) ? 128 : 256;
  const int blocks = 1 + (v / 4) % 2;
  GraphBuilder b;
  NodeId h = b.Parameter(Shape({tokens, dmodel}));
  for (int block = 0; block < blocks; ++block) h = TransformerBlock(b, h);
  h = LayerNormish(b, h);
  NodeId logits = b.Dense(h, 1024, /*relu=*/false);
  b.MarkOutput(b.Softmax(logits));
  return ir::Program{"transformer_lm_v" + std::to_string(variant),
                     "TransformerLM", std::move(b).Build()};
}

ir::Program RnnLm(int variant) {
  const auto [v, tier] = SplitVariant(variant, 6);
  const std::int64_t batch = (v % 2 == 0) ? 32 : 64;
  const std::int64_t hidden = (v / 2 % 3 == 0) ? 64
                              : (v / 2 % 3 == 1) ? 128 : 96;
  const int timesteps = 4 + tier;
  GraphBuilder b;
  LstmState s{b.Parameter(Shape({batch, hidden})),
              b.Parameter(Shape({batch, hidden}))};
  for (int t = 0; t < timesteps; ++t) {
    const NodeId x = b.Parameter(Shape({batch, hidden}));
    s = LstmCell(b, x, s, hidden);
  }
  NodeId logits = b.Dense(s.h, 2048, /*relu=*/false);
  b.MarkOutput(b.Softmax(logits));
  return ir::Program{"rnn_lm_v" + std::to_string(variant), "RNNLM",
                     std::move(b).Build()};
}

ir::Program WaveRnnLike(int variant) {
  const auto [v, tier] = SplitVariant(variant, 6);
  const std::int64_t batch = 4 + 4 * (v % 3);
  const std::int64_t hidden = (v / 3 == 0) ? 128 : 256;
  const std::int64_t window = 32 + 16 * tier;
  GraphBuilder b;
  // Conditioning conv1d pre-net over a short audio window.
  NodeId cond = b.Parameter(Shape({batch, 1, window, 16}));
  cond = Conv1d(b, cond, 32, 5, 1);
  cond = Conv1d(b, cond, 32, 5, 2);
  const Shape& cs = b.shape_of(cond);
  NodeId flat =
      b.Reshape(cond, Shape({cs.dim(0), cs.dim(1) * cs.dim(2) * cs.dim(3)}));
  NodeId proj = b.Dense(flat, hidden, /*relu=*/true);
  // Sample-level GRU-ish core + dual softmax heads (coarse/fine).
  LstmState s{proj, b.Parameter(Shape({batch, hidden}))};
  s = LstmCell(b, proj, s, hidden);
  NodeId coarse = b.Dense(s.h, 256, /*relu=*/false);
  NodeId fine = b.Dense(s.h, 256, /*relu=*/false);
  b.MarkOutput(b.Softmax(coarse));
  b.MarkOutput(b.Softmax(fine));
  return ir::Program{"wavernn_v" + std::to_string(variant), "WaveRNNLike",
                     std::move(b).Build()};
}

ir::Program ConvDrawLike(int variant) {
  const auto [v, tier] = SplitVariant(variant, 6);
  const std::int64_t batch = 8 * (1 + v % 2);
  const std::int64_t width = (v / 2 % 3 == 0) ? 16
                             : (v / 2 % 3 == 1) ? 24 : 32;
  const int unroll = 2 + tier;
  GraphBuilder b;
  NodeId x = b.Parameter(Shape({batch, 32, 32, 3}));
  // Recurrent read/write loop, unrolled twice.
  NodeId canvas = b.Parameter(Shape({batch, 32, 32, 3}));
  LstmState s{b.Parameter(Shape({batch, 128})),
              b.Parameter(Shape({batch, 128}))};
  for (int step = 0; step < unroll; ++step) {
    NodeId err = b.Binary(OpCode::kSubtract, x, canvas);
    NodeId enc = ConvBnRelu(b, err, width, 5, 2);
    enc = ConvBnRelu(b, enc, width * 2, 5, 2);
    const Shape& es = b.shape_of(enc);
    NodeId flat =
        b.Reshape(enc, Shape({es.dim(0), es.dim(1) * es.dim(2) * es.dim(3)}));
    NodeId zmu = b.Dense(flat, 128, /*relu=*/false);
    NodeId zlogvar = b.Dense(flat, 128, /*relu=*/false);
    NodeId z = b.Binary(
        OpCode::kAdd, zmu,
        b.Binary(OpCode::kMultiply,
                 b.Unary(OpCode::kExp, zlogvar),
                 b.Parameter(Shape({batch, 128}))));  // noise input
    s = LstmCell(b, z, s, 128);
    NodeId dec = b.Dense(s.h, 32 * 32 * 3, /*relu=*/false);
    NodeId patch = b.Reshape(dec, Shape({batch, 32, 32, 3}));
    canvas = b.Binary(OpCode::kAdd, canvas, patch);
  }
  b.MarkOutput(b.Unary(OpCode::kLogistic, canvas));
  return ir::Program{"convdraw_v" + std::to_string(variant), "ConvDrawLike",
                     std::move(b).Build()};
}

ir::Program DlrmLike(int variant) {
  const int tier = variant;  // one base variant; tiers add sparse features
  GraphBuilder b;
  const std::int64_t batch = 128;
  // Bottom MLP over dense features.
  NodeId dense = b.Parameter(Shape({batch, 13}));
  NodeId bot = b.Dense(dense, 64);
  bot = b.Dense(bot, 32);
  // Sparse embeddings arrive as already-gathered vectors.
  std::vector<NodeId> features = {bot};
  for (int f = 0; f < 8 + 2 * tier; ++f) {
    features.push_back(b.Parameter(Shape({batch, 32})));
  }
  NodeId stacked = b.Concatenate(features, 1);  // [batch, 9*32]
  // Pairwise feature interactions via a dot product.
  NodeId inter =
      b.Dot(stacked, b.Parameter(Shape({b.shape_of(stacked).dim(1), 64})));
  NodeId top_in = b.Concatenate({bot, inter}, 1);
  NodeId top = b.Dense(top_in, 128);
  top = b.Dense(top, 64);
  top = b.Dense(top, 1, /*relu=*/false);
  b.MarkOutput(b.Unary(OpCode::kLogistic, top));
  return ir::Program{"dlrm_v" + std::to_string(variant), "DLRMLike",
                     std::move(b).Build()};
}

ir::Program AutoCompletionLm(int variant) {
  const auto [v, tier] = SplitVariant(variant, 4);
  const std::int64_t batch = 8 + 8 * (v % 2);
  const std::int64_t hidden = (v / 2 == 0) ? 48 : 64;
  GraphBuilder b;
  LstmState s{b.Parameter(Shape({batch, hidden})),
              b.Parameter(Shape({batch, hidden}))};
  for (int t = 0; t < 2 + tier; ++t) {
    const NodeId x = b.Parameter(Shape({batch, hidden}));
    s = LstmCell(b, x, s, hidden);
  }
  NodeId logits = b.Dense(s.h, 256, /*relu=*/false);
  b.MarkOutput(b.Softmax(logits));
  return ir::Program{"autocomplete_v" + std::to_string(variant),
                     "AutoCompletionLM", std::move(b).Build()};
}

ir::Program SmartComposeLike(int variant) {
  const auto [v, tier] = SplitVariant(variant, 4);
  const std::int64_t batch = 16 * (1 + v % 2);
  const std::int64_t hidden = (v / 2 == 0) ? 96 : 160;
  GraphBuilder b;
  NodeId prefix = b.Parameter(Shape({batch, hidden}));
  NodeId context = b.Parameter(Shape({batch, hidden}));
  NodeId joined = b.Concatenate({prefix, context}, 1);
  LstmState s{b.Parameter(Shape({batch, hidden})),
              b.Parameter(Shape({batch, hidden}))};
  s = LstmCell(b, joined, s, hidden);
  for (int t = 0; t < 1 + tier; ++t) s = LstmCell(b, s.h, s, hidden);
  NodeId logits = b.Dense(s.h, 4096, /*relu=*/false);
  b.MarkOutput(b.Softmax(logits));
  return ir::Program{"smartcompose_v" + std::to_string(variant),
                     "SmartComposeLike", std::move(b).Build()};
}

ir::Program Char2FeatsLike(int variant) {
  const auto [v, tier] = SplitVariant(variant, 4);
  const std::int64_t batch = 16 * (1 + v % 2);
  const std::int64_t width = (v / 2 == 0) ? 32 : 48;
  const std::int64_t seq = 64 + 32 * tier;
  GraphBuilder b;
  NodeId chars = b.Parameter(Shape({batch, 1, seq, 16}));
  NodeId h = Conv1d(b, chars, width, 3, 1);
  h = Conv1d(b, h, width, 3, 2);
  h = Conv1d(b, h, width * 2, 3, 2);
  h = b.Reduce(h, {1, 2});  // pool over time
  h = b.Dense(h, 128);
  h = b.Dense(h, 64, /*relu=*/false);
  b.MarkOutput(b.Unary(OpCode::kTanh, h));
  return ir::Program{"char2feats_v" + std::to_string(variant),
                     "Char2FeatsLike", std::move(b).Build()};
}

ir::Program RankingLike(int variant) {
  const auto [v, tier] = SplitVariant(variant, 6);
  const std::int64_t batch = 64 * (1 + v % 3);
  const std::int64_t width = (v / 3 == 0) ? 128 : 256;
  GraphBuilder b;
  NodeId query = b.Parameter(Shape({batch, 64}));
  NodeId doc = b.Parameter(Shape({batch, 256 + 64 * tier}));
  NodeId q = b.Dense(query, width);
  q = b.Dense(q, width / 2);
  NodeId d = b.Dense(doc, width);
  d = b.Dense(d, width / 2);
  NodeId joined = b.Concatenate({q, d, b.Binary(OpCode::kMultiply, q, d)}, 1);
  NodeId h = b.Dense(joined, width);
  h = b.Dense(h, width / 4);
  h = b.Dense(h, 1, /*relu=*/false);
  b.MarkOutput(b.Unary(OpCode::kLogistic, h));
  return ir::Program{"ranking_v" + std::to_string(variant), "RankingLike",
                     std::move(b).Build()};
}

ir::Program ImageEmbedLike(int variant) {
  const auto [v, tier] = SplitVariant(variant, 4);
  const std::int64_t batch = 16 * (1 + v % 2);
  const std::int64_t width = (v / 2 == 0) ? 24 : 40;
  const std::int64_t res = 48 + 16 * tier;
  GraphBuilder b;
  NodeId x = b.Parameter(Shape({batch, res, res, 3}));
  NodeId h = ConvBnRelu(b, x, width, 5, 2);
  h = ConvBnRelu(b, h, width * 2, 3, 2);
  h = ConvBnRelu(b, h, width * 2, 3, 1);
  h = b.Reduce(h, {1, 2});
  h = b.Dense(h, 128, /*relu=*/false);
  // L2 normalize the embedding.
  NodeId sq = b.Binary(OpCode::kMultiply, h, h);
  NodeId norm = b.Reduce(sq, {1});
  NodeId inv = b.Unary(OpCode::kRsqrt,
                       b.Binary(OpCode::kAdd, norm, b.Constant(b.shape_of(norm))));
  NodeId out = b.Binary(OpCode::kMultiply, h, b.Broadcast(inv, b.shape_of(h)));
  b.MarkOutput(out);
  return ir::Program{"imageembed_v" + std::to_string(variant),
                     "ImageEmbedLike", std::move(b).Build()};
}

ir::Program Feats2WaveLike(int variant) {
  const auto [v, tier] = SplitVariant(variant, 4);
  const std::int64_t batch = 4 * (1 + v % 2);
  const std::int64_t width = (v / 2 == 0) ? 32 : 64;
  const std::int64_t time = 64 + 32 * tier;
  GraphBuilder b;
  NodeId feats = b.Parameter(Shape({batch, 64}));
  NodeId h = b.Dense(feats, 1 * time * width, /*relu=*/true);
  h = b.Reshape(h, Shape({batch, 1, time, width}));
  h = Conv1d(b, h, width, 9, 1);
  h = Conv1d(b, h, width, 9, 1);
  h = Conv1d(b, h, 16, 5, 1);
  const Shape& s = b.shape_of(h);
  h = b.Reshape(h, Shape({s.dim(0), s.dim(1) * s.dim(2) * s.dim(3)}));
  h = b.Dense(h, 1024, /*relu=*/false);
  b.MarkOutput(b.Unary(OpCode::kTanh, h));
  return ir::Program{"feats2wave_v" + std::to_string(variant),
                     "Feats2WaveLike", std::move(b).Build()};
}

struct FamilySpec {
  const char* name;
  int variants;
  ir::Program (*build)(int);
};

const FamilySpec kFamilies[] = {
    {"ResNetV1", 12, ResNetV1},
    {"ResNetV2", 10, ResNetV2},
    {"InceptionLike", 8, InceptionLike},
    {"NMT", 8, Nmt},
    {"TransformerLM", 8, TransformerLm},
    {"TranslateLike", 6, TranslateLike},
    {"RNNLM", 6, RnnLm},
    {"WaveRNNLike", 6, WaveRnnLike},
    {"SSDLike", 6, SsdLike},
    {"ConvDrawLike", 6, ConvDrawLike},
    {"AlexNetLike", 1, AlexNetLike},
    {"DLRMLike", 1, DlrmLike},
    {"AutoCompletionLM", 4, AutoCompletionLm},
    {"SmartComposeLike", 4, SmartComposeLike},
    {"Char2FeatsLike", 4, Char2FeatsLike},
    {"RankingLike", 6, RankingLike},
    {"ImageEmbedLike", 4, ImageEmbedLike},
    {"Feats2WaveLike", 4, Feats2WaveLike},
};

}  // namespace

std::vector<ir::Program> GenerateCorpus() {
  return GenerateCorpus(CorpusOptions{});
}

std::vector<ir::Program> GenerateCorpus(const CorpusOptions& options) {
  const double scale = std::max(1.0, options.scale);
  std::vector<ir::Program> corpus;
  corpus.reserve(static_cast<size_t>(std::lround(104 * scale)));
  for (const FamilySpec& family : kFamilies) {
    for (int v = 0; v < family.variants; ++v) {
      corpus.push_back(family.build(v));
    }
    const int extra =
        static_cast<int>(std::lround(family.variants * (scale - 1.0)));
    if (extra <= 0) continue;
    // Extension variants are a consecutive window of the (unbounded) tier
    // space starting at a seed-chosen offset: consecutive indices are
    // distinct by construction, identical seeds give identical corpora.
    const int offset = static_cast<int>(
        options.seed % static_cast<std::uint64_t>(3 * family.variants + 1));
    for (int i = 0; i < extra; ++i) {
      corpus.push_back(family.build(family.variants + offset + i));
    }
  }
  return corpus;
}

std::vector<std::string> FamilyNames() {
  std::vector<std::string> names;
  for (const FamilySpec& family : kFamilies) names.emplace_back(family.name);
  return names;
}

ir::Program BuildProgram(const std::string& family, int variant) {
  if (variant < 0) {
    throw std::invalid_argument("negative variant for family " + family);
  }
  for (const FamilySpec& spec : kFamilies) {
    if (family == spec.name) return spec.build(variant);
  }
  throw std::invalid_argument("unknown family: " + family);
}

}  // namespace tpuperf::data
