#include "dataset/store.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <utility>

#include "core/fault_injection.h"
#include "core/thread_pool.h"
#include "sim/hash.h"

#if defined(__unix__) || defined(__APPLE__)
#define TPUPERF_STORE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace tpuperf::data {
namespace {

// Enc/Dec/Fnv1a64 live in dataset/wire.h (shared with serve's snapshots).

std::uint64_t HashString(std::string_view s) noexcept {
  return Fnv1a64(s.data(), s.size());
}

// Header layout: magic(8) version(4) feature_hash(8) record_count(8).
constexpr std::size_t kHeaderSize = 28;
constexpr std::size_t kRecordCountOffset = 20;
// Per-record prefix: type(4) payload_size(8) checksum(8).
constexpr std::size_t kRecordHeaderSize = 20;

// ---- IR serialization ------------------------------------------------------

void EncodeShape(Enc& e, const ir::Shape& shape) {
  e.U32(static_cast<std::uint32_t>(shape.rank()));
  for (const std::int64_t d : shape.dims()) e.I64(d);
  for (const int l : shape.minor_to_major()) e.I32(l);
  e.U8(static_cast<std::uint8_t>(shape.element_type()));
}

ir::Shape DecodeShape(Dec& d) {
  const std::uint32_t rank = d.U32();
  if (rank > 64) d.Fail("implausible shape rank " + std::to_string(rank));
  std::vector<std::int64_t> dims(rank);
  for (auto& v : dims) v = d.I64();
  std::vector<int> layout(rank);
  for (auto& v : layout) v = d.I32();
  const std::uint8_t etype = d.U8();
  if (etype > static_cast<std::uint8_t>(ir::ElementType::kPred)) {
    d.Fail("unknown element type " + std::to_string(etype));
  }
  ir::Shape shape(std::move(dims), static_cast<ir::ElementType>(etype));
  shape.set_minor_to_major(std::move(layout));
  return shape;
}

void EncodeGraph(Enc& e, const ir::Graph& graph) {
  e.U32(static_cast<std::uint32_t>(graph.num_nodes()));
  for (const ir::Node& n : graph.nodes()) {
    e.U8(static_cast<std::uint8_t>(n.op));
    EncodeShape(e, n.shape);
    e.U32(static_cast<std::uint32_t>(n.operands.size()));
    for (const ir::NodeId id : n.operands) e.I32(id);
    e.U32(static_cast<std::uint32_t>(n.window.dims.size()));
    for (const ir::WindowDim& w : n.window.dims) {
      e.I64(w.size);
      e.I64(w.stride);
      e.I64(w.padding_low);
      e.I64(w.padding_high);
      e.I64(w.dilation);
    }
    e.U32(static_cast<std::uint32_t>(n.reduce_dims.size()));
    for (const int r : n.reduce_dims) e.I32(r);
    e.I64(n.feature_in);
    e.I64(n.feature_out);
    e.U8(n.is_output ? 1 : 0);
  }
}

ir::Graph DecodeGraph(Dec& d) {
  const std::uint32_t num_nodes = d.U32();
  d.RequireCount(num_nodes, 16, "node");
  ir::Graph graph;
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    ir::Node n;
    const std::uint8_t op = d.U8();
    if (op >= static_cast<std::uint8_t>(ir::kNumOpCodes)) {
      d.Fail("unknown opcode " + std::to_string(op) + " in node " +
             std::to_string(i));
    }
    n.op = static_cast<ir::OpCode>(op);
    n.shape = DecodeShape(d);
    const std::uint32_t num_operands = d.U32();
    d.RequireCount(num_operands, 4, "operand");
    n.operands.resize(num_operands);
    for (auto& id : n.operands) id = d.I32();
    const std::uint32_t num_window = d.U32();
    d.RequireCount(num_window, 40, "window dim");
    n.window.dims.resize(num_window);
    for (auto& w : n.window.dims) {
      w.size = d.I64();
      w.stride = d.I64();
      w.padding_low = d.I64();
      w.padding_high = d.I64();
      w.dilation = d.I64();
    }
    const std::uint32_t num_reduce = d.U32();
    d.RequireCount(num_reduce, 4, "reduce dim");
    n.reduce_dims.resize(num_reduce);
    for (auto& r : n.reduce_dims) r = d.I32();
    n.feature_in = d.I64();
    n.feature_out = d.I64();
    n.is_output = d.U8() != 0;
    graph.AddNode(std::move(n));  // re-validates the operand-order invariant
  }
  return graph;
}

void EncodeTile(Enc& e, const ir::TileConfig& tile) {
  e.U32(static_cast<std::uint32_t>(tile.dims.size()));
  for (const std::int64_t v : tile.dims) e.I64(v);
}

ir::TileConfig DecodeTile(Dec& d) {
  const std::uint32_t rank = d.U32();
  if (rank > 64) d.Fail("implausible tile rank " + std::to_string(rank));
  ir::TileConfig tile;
  tile.dims.resize(rank);
  for (auto& v : tile.dims) v = d.I64();
  return tile;
}

void EncodeKernelRecord(Enc& e, const KernelRecord& record) {
  EncodeGraph(e, record.kernel.graph);
  e.U8(static_cast<std::uint8_t>(record.kernel.kind));
  e.U64(record.fingerprint);
  e.I32(record.program_id);
  e.Str(record.family);
}

KernelRecord DecodeKernelRecord(Dec& d) {
  KernelRecord record;
  record.kernel.graph = DecodeGraph(d);
  const std::uint8_t kind = d.U8();
  if (kind > static_cast<std::uint8_t>(ir::KernelKind::kDataFormatting)) {
    d.Fail("unknown kernel kind " + std::to_string(kind));
  }
  record.kernel.kind = static_cast<ir::KernelKind>(kind);
  record.fingerprint = d.U64();
  record.program_id = d.I32();
  record.family = d.Str();
  if (record.fingerprint != record.kernel.graph.Fingerprint()) {
    d.Fail("stored fingerprint does not match the decoded graph "
           "(serialization drift or tampering)");
  }
  return record;
}

// ---- Record payloads -------------------------------------------------------

std::string EncodeProgramPayload(const ProgramInfo& p) {
  Enc e;
  e.I32(p.program_id);
  e.Str(p.name);
  e.Str(p.family);
  return e.bytes();
}

ProgramInfo DecodeProgramPayload(Dec& d) {
  ProgramInfo p;
  p.program_id = d.I32();
  p.name = d.Str();
  p.family = d.Str();
  return p;
}

std::string EncodeTileKernelPayload(const TileKernelData& k) {
  Enc e;
  EncodeKernelRecord(e, k.record);
  if (k.configs.size() != k.runtimes.size()) {
    throw StoreError("tile kernel has " + std::to_string(k.configs.size()) +
                     " configs but " + std::to_string(k.runtimes.size()) +
                     " runtimes; refusing to serialize");
  }
  e.U32(static_cast<std::uint32_t>(k.configs.size()));
  for (std::size_t i = 0; i < k.configs.size(); ++i) {
    EncodeTile(e, k.configs[i]);
    e.F64(k.runtimes[i]);
  }
  return e.bytes();
}

TileKernelData DecodeTileKernelPayload(Dec& d) {
  TileKernelData k;
  k.record = DecodeKernelRecord(d);
  const std::uint32_t count = d.U32();
  k.configs.reserve(count);
  k.runtimes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    k.configs.push_back(DecodeTile(d));
    k.runtimes.push_back(d.F64());
  }
  return k;
}

std::string EncodeFusionSamplePayload(const FusionSample& s) {
  Enc e;
  EncodeKernelRecord(e, s.record);
  EncodeTile(e, s.tile);
  e.F64(s.runtime);
  e.U8(s.from_default_config ? 1 : 0);
  return e.bytes();
}

FusionSample DecodeFusionSamplePayload(Dec& d) {
  FusionSample s;
  s.record = DecodeKernelRecord(d);
  s.tile = DecodeTile(d);
  s.runtime = d.F64();
  s.from_default_config = d.U8() != 0;
  return s;
}

std::string EncodeFeaturizedPayload(const FeaturizedKernel& fk) {
  Enc e;
  e.U64(fk.fingerprint);
  e.U64(fk.structural_sig);
  const feat::KernelFeatures& kf = fk.features;
  const auto n = static_cast<std::uint32_t>(kf.opcode_ids.size());
  e.U32(n);
  e.U32(static_cast<std::uint32_t>(feat::kNodeScalarFeatures));
  for (const int id : kf.opcode_ids) e.I32(id);
  for (const auto& row : kf.node_scalars) {
    if (row.size() != static_cast<std::size_t>(feat::kNodeScalarFeatures)) {
      throw StoreError("featurized record has a node-scalar row of width " +
                       std::to_string(row.size()) + "; refusing to serialize");
    }
    for (const double v : row) e.F64(v);
  }
  // Adjacency (operand lists) in CSR form: row_ptr then column indices.
  std::uint32_t nnz = 0;
  for (const auto& ops : kf.operand_lists) {
    nnz += static_cast<std::uint32_t>(ops.size());
  }
  e.U32(nnz);
  std::uint32_t row_start = 0;
  e.U32(0);
  for (const auto& ops : kf.operand_lists) {
    row_start += static_cast<std::uint32_t>(ops.size());
    e.U32(row_start);
  }
  for (const auto& ops : kf.operand_lists) {
    for (const int id : ops) e.I32(id);
  }
  e.U32(static_cast<std::uint32_t>(kf.static_perf.size()));
  for (const double v : kf.static_perf) e.F64(v);
  return e.bytes();
}

FeaturizedKernel DecodeFeaturizedPayload(Dec& d) {
  FeaturizedKernel fk;
  fk.fingerprint = d.U64();
  fk.structural_sig = d.U64();
  const std::uint32_t n = d.U32();
  const std::uint32_t width = d.U32();
  if (width != static_cast<std::uint32_t>(feat::kNodeScalarFeatures)) {
    d.Fail("node-scalar width " + std::to_string(width) +
           " does not match the current featurizer (" +
           std::to_string(feat::kNodeScalarFeatures) + ")");
  }
  d.RequireCount(n, 4, "featurized node");
  feat::KernelFeatures& kf = fk.features;
  kf.opcode_ids.resize(n);
  for (auto& id : kf.opcode_ids) {
    id = d.I32();
    if (id < 0 || id >= ir::kNumOpCodes) {
      d.Fail("featurized opcode id " + std::to_string(id) + " out of range");
    }
  }
  d.RequireCount(static_cast<std::uint64_t>(n) * width, 8, "node scalar");
  kf.node_scalars.assign(n, std::vector<double>(
                                static_cast<std::size_t>(width)));
  for (auto& row : kf.node_scalars) {
    for (auto& v : row) v = d.F64();
  }
  const std::uint32_t nnz = d.U32();
  d.RequireCount(nnz, 4, "CSR edge");
  std::vector<std::uint32_t> row_ptr(n + 1);
  for (auto& v : row_ptr) v = d.U32();
  if (row_ptr.front() != 0 || row_ptr.back() != nnz) {
    d.Fail("CSR row pointers do not cover the stored edges");
  }
  kf.operand_lists.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (row_ptr[i + 1] < row_ptr[i]) d.Fail("CSR row pointers not monotone");
    kf.operand_lists[i].resize(row_ptr[i + 1] - row_ptr[i]);
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    for (auto& id : kf.operand_lists[i]) {
      id = d.I32();
      if (id < 0 || static_cast<std::uint32_t>(id) >= i) {
        d.Fail("CSR operand " + std::to_string(id) + " of node " +
               std::to_string(i) + " breaks the topological invariant");
      }
    }
  }
  const std::uint32_t perf = d.U32();
  if (perf != static_cast<std::uint32_t>(feat::kStaticPerfFeatures)) {
    d.Fail("static-perf width " + std::to_string(perf) +
           " does not match the current featurizer");
  }
  kf.static_perf.resize(perf);
  for (auto& v : kf.static_perf) v = d.F64();
  return fk;
}

std::string EncodeScalerPayload(const std::string& name,
                                const feat::FeatureScaler& scaler) {
  Enc e;
  e.Str(name);
  e.U32(static_cast<std::uint32_t>(scaler.num_features()));
  e.I64(scaler.observed());
  for (const double v : scaler.mins()) e.F64(v);
  for (const double v : scaler.maxs()) e.F64(v);
  return e.bytes();
}

std::pair<std::string, feat::FeatureScaler> DecodeScalerPayload(Dec& d) {
  std::string name = d.Str();
  const std::uint32_t width = d.U32();
  if (width > (1u << 20)) d.Fail("implausible scaler width");
  const long observed = static_cast<long>(d.I64());
  std::vector<double> mins(width);
  for (auto& v : mins) v = d.F64();
  std::vector<double> maxs(width);
  for (auto& v : maxs) v = d.F64();
  return {std::move(name),
          feat::FeatureScaler::FromStats(std::move(mins), std::move(maxs),
                                         observed)};
}

// ---- Shared build-path helpers ---------------------------------------------

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Featurizes every unique (fingerprint, signature) kernel once, sharded
// across the global thread pool. Output order is the deterministic
// first-seen record order regardless of pool width.
std::shared_ptr<StoredFeatures> FeaturizeUnique(
    const std::vector<const KernelRecord*>& records) {
  std::vector<const KernelRecord*> unique;
  std::vector<std::uint64_t> sigs;
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  for (const KernelRecord* rec : records) {
    const std::uint64_t sig = rec->kernel.graph.StructuralSignature();
    if (seen.insert({rec->fingerprint, sig}).second) {
      unique.push_back(rec);
      sigs.push_back(sig);
    }
  }
  std::vector<FeaturizedKernel> featurized(unique.size());
  const auto body = [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t i = b0; i < b1; ++i) {
      const auto u = static_cast<std::size_t>(i);
      featurized[u].fingerprint = unique[u]->fingerprint;
      featurized[u].structural_sig = sigs[u];
      featurized[u].features =
          feat::FeaturizeKernel(unique[u]->kernel.graph);
    }
  };
  const auto n = static_cast<std::int64_t>(unique.size());
  if (n > 1 && core::ThreadPool::Global().size() > 1) {
    core::ParallelFor(0, n, 1, body);
  } else {
    body(0, n);
  }
  auto out = std::make_shared<StoredFeatures>();
  for (FeaturizedKernel& fk : featurized) out->Add(std::move(fk));
  return out;
}

void VerifyPrograms(const StoreContents& contents,
                    std::span<const ir::Program> corpus,
                    const std::string& path) {
  if (contents.programs.size() != corpus.size()) {
    throw StoreError(path + ": store was built from a different corpus (" +
                     std::to_string(contents.programs.size()) +
                     " programs stored, " + std::to_string(corpus.size()) +
                     " expected)");
  }
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const ProgramInfo& p = contents.programs[i];
    if (p.program_id != static_cast<int>(i) || p.name != corpus[i].name ||
        p.family != corpus[i].family) {
      throw StoreError(path + ": program " + std::to_string(i) +
                       " is \"" + p.name + "\" in the store but \"" +
                       corpus[i].name + "\" in the generating corpus");
    }
  }
}

void FillStats(StoreLoadStats* stats, bool hit, std::string path,
               Clock::time_point start) {
  if (stats == nullptr) return;
  stats->cache_hit = hit;
  stats->path = std::move(path);
  stats->seconds = Seconds(start);
}

}  // namespace

// ---- StoredFeatures --------------------------------------------------------

void StoredFeatures::Add(FeaturizedKernel kernel) {
  if (Lookup(kernel.fingerprint, kernel.structural_sig) != nullptr) return;
  entries_.push_back(std::move(kernel));
  const FeaturizedKernel& stored = entries_.back();
  by_fingerprint_[stored.fingerprint].push_back(&stored);
}

const feat::KernelFeatures* StoredFeatures::Lookup(
    std::uint64_t fingerprint, std::uint64_t structural_sig) const {
  const auto it = by_fingerprint_.find(fingerprint);
  if (it == by_fingerprint_.end()) return nullptr;
  for (const FeaturizedKernel* fk : it->second) {
    if (fk->structural_sig == structural_sig) return &fk->features;
  }
  return nullptr;
}

// ---- Format-level helpers --------------------------------------------------

std::uint64_t FeatureConfigHash() {
  return sim::HashCombine(
      0xFEA701ull, static_cast<std::uint64_t>(feat::kNodeScalarFeatures),
      static_cast<std::uint64_t>(feat::kTileFeatures),
      static_cast<std::uint64_t>(feat::kStaticPerfFeatures),
      static_cast<std::uint64_t>(ir::kMaxEncodedRank),
      static_cast<std::uint64_t>(ir::kNumOpCodes));
}

// ---- DatasetWriter ---------------------------------------------------------
//
// On POSIX builds the writer drives a raw file descriptor with explicit
// short-write/EINTR loops: ::write may transfer fewer bytes than asked (or
// fail with EINTR when a signal lands mid-call), and std::ofstream gives no
// way to retry the remainder — it just poisons the stream. Every syscall
// result is checked; failures throw StoreError naming the file and errno.
// Non-unix builds keep a buffered std::ofstream.

namespace {

#if defined(TPUPERF_STORE_HAS_MMAP)

struct WriterIo {
  int fd = -1;
};

int OpenForWrite(const std::string& path) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

// Writes all `size` bytes to `fd`, looping over short writes and retrying
// EINTR; throws StoreError if the kernel reports an error or no progress.
void WriteAll(int fd, const char* data, std::size_t size,
              const std::string& path) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw StoreError(path + ": write failed (" +
                       std::string(std::strerror(errno)) + ")");
    }
    if (n == 0) {
      // Regular files never return 0 from a nonzero-size write, but a
      // surprise here must not become an infinite loop.
      throw StoreError(path + ": write made no progress");
    }
    done += static_cast<std::size_t>(n);
  }
}

void WarnClose(int fd, const std::string& path) {
  if (::close(fd) != 0) {
    std::fprintf(stderr, "[tpuperf] warning: close(%s) failed: %s\n",
                 path.c_str(), std::strerror(errno));
  }
}

#else
std::ofstream& Stream(void* p) { return *static_cast<std::ofstream*>(p); }
#endif

}  // namespace

DatasetWriter::DatasetWriter(std::string path) : path_(std::move(path)) {
  // Unique temporary per writer: concurrent cold builds of the same key
  // (shared cache dirs) each complete their own file, and the atomic rename
  // makes the last finisher win with a consistent store.
  tmp_path_ = path_ + ".tmp." +
              std::to_string(static_cast<unsigned long long>(
                  Clock::now().time_since_epoch().count())) +
              "." +
              std::to_string(reinterpret_cast<std::uintptr_t>(this));
  Enc e;
  e.U32(kStoreFormatVersion);
  e.U64(FeatureConfigHash());
  e.U64(0);  // record count, patched by Finish()
#if defined(TPUPERF_STORE_HAS_MMAP)
  const int fd = OpenForWrite(tmp_path_);
  if (fd < 0) {
    throw StoreError(tmp_path_ + ": cannot open for writing (" +
                     std::string(std::strerror(errno)) + ")");
  }
  try {
    WriteAll(fd, kStoreMagic, sizeof(kStoreMagic), tmp_path_);
    WriteAll(fd, e.bytes().data(), e.bytes().size(), tmp_path_);
  } catch (...) {
    // The destructor never runs when the constructor throws; release the
    // descriptor and the half-written temporary here.
    WarnClose(fd, tmp_path_);
    std::error_code ec;
    std::filesystem::remove(tmp_path_, ec);
    throw;
  }
  io_ = new WriterIo{fd};
#else
  auto stream = std::make_unique<std::ofstream>(
      tmp_path_, std::ios::binary | std::ios::trunc);
  if (!*stream) {
    throw StoreError(tmp_path_ + ": cannot open for writing");
  }
  stream->write(kStoreMagic, sizeof(kStoreMagic));
  stream->write(e.bytes().data(),
                static_cast<std::streamsize>(e.bytes().size()));
  io_ = stream.release();
#endif
}

DatasetWriter::~DatasetWriter() {
  if (io_ != nullptr) {
#if defined(TPUPERF_STORE_HAS_MMAP)
    WriterIo* io = static_cast<WriterIo*>(io_);
    WarnClose(io->fd, tmp_path_);
    delete io;
#else
    delete &Stream(io_);
#endif
    io_ = nullptr;
  }
  if (!finished_) {
    std::error_code ec;
    std::filesystem::remove(tmp_path_, ec);
  }
}

void DatasetWriter::WriteRecord(std::uint32_t type,
                                const std::string& payload) {
  if (finished_ || io_ == nullptr) {
    throw StoreError(path_ + ": writer already finished");
  }
  Enc header;
  header.U32(type);
  header.U64(payload.size());
  header.U64(Fnv1a64(payload.data(), payload.size()));
#if defined(TPUPERF_STORE_HAS_MMAP)
  const int fd = static_cast<WriterIo*>(io_)->fd;
  WriteAll(fd, header.bytes().data(), header.bytes().size(), tmp_path_);
  WriteAll(fd, payload.data(), payload.size(), tmp_path_);
#else
  auto& os = Stream(io_);
  os.write(header.bytes().data(),
           static_cast<std::streamsize>(header.bytes().size()));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!os) throw StoreError(tmp_path_ + ": write failed");
#endif
  ++count_;
}

void DatasetWriter::AddRaw(std::uint32_t type, const std::string& payload) {
  WriteRecord(type, payload);
}

void DatasetWriter::Add(const ProgramInfo& program) {
  WriteRecord(kProgramRecordType, EncodeProgramPayload(program));
}

void DatasetWriter::Add(const TileKernelData& kernel) {
  WriteRecord(kTileKernelRecordType, EncodeTileKernelPayload(kernel));
}

void DatasetWriter::Add(const FusionSample& sample) {
  WriteRecord(kFusionSampleRecordType, EncodeFusionSamplePayload(sample));
}

void DatasetWriter::Add(const FeaturizedKernel& kernel) {
  WriteRecord(kFeaturizedRecordType, EncodeFeaturizedPayload(kernel));
}

void DatasetWriter::AddScaler(const std::string& name,
                              const feat::FeatureScaler& scaler) {
  WriteRecord(kScalerRecordType, EncodeScalerPayload(name, scaler));
}

void DatasetWriter::Finish() {
  if (finished_) return;
  if (io_ == nullptr) throw StoreError(path_ + ": writer has no open file");
  Enc e;
  e.U64(count_);
#if defined(TPUPERF_STORE_HAS_MMAP)
  WriterIo* io = static_cast<WriterIo*>(io_);
  const int fd = io->fd;
  if (::lseek(fd, static_cast<off_t>(kRecordCountOffset), SEEK_SET) < 0) {
    throw StoreError(tmp_path_ + ": seek to record count failed (" +
                     std::string(std::strerror(errno)) + ")");
  }
  WriteAll(fd, e.bytes().data(), e.bytes().size(), tmp_path_);
  io_ = nullptr;
  delete io;
  // A failed close can mean the kernel could not commit buffered data;
  // surfacing it here keeps a corrupt store from being renamed into place.
  if (::close(fd) != 0) {
    throw StoreError(tmp_path_ + ": close failed (" +
                     std::string(std::strerror(errno)) + ")");
  }
#else
  auto& os = Stream(io_);
  os.seekp(static_cast<std::streamoff>(kRecordCountOffset));
  os.write(e.bytes().data(), static_cast<std::streamsize>(e.bytes().size()));
  os.flush();
  const bool ok = static_cast<bool>(os);
  delete &os;
  io_ = nullptr;
  if (!ok) throw StoreError(tmp_path_ + ": flush failed");
#endif
  std::error_code ec;
  std::filesystem::rename(tmp_path_, path_, ec);
  if (ec) {
    throw StoreError(path_ + ": rename from temporary failed (" +
                     ec.message() + ")");
  }
  finished_ = true;
}

// ---- DatasetReader ---------------------------------------------------------

DatasetReader::DatasetReader(std::string path, ReadMode mode)
    : path_(std::move(path)) {
#if defined(TPUPERF_STORE_HAS_MMAP)
  if (mode == ReadMode::kAuto || mode == ReadMode::kMmap) {
    const int fd = ::open(path_.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st{};
      if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        void* base = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                            PROT_READ, MAP_PRIVATE, fd, 0);
        if (base != MAP_FAILED) {
          map_base_ = base;
          map_size_ = static_cast<std::size_t>(st.st_size);
          data_ = static_cast<const unsigned char*>(base);
          size_ = map_size_;
          mapped_ = true;
        }
      }
      WarnClose(fd, path_);
    }
  }
#else
  if (mode == ReadMode::kMmap) {
    throw StoreError(path_ + ": mmap reads are not supported on this platform");
  }
#endif
  if (!mapped_) {
    if (mode == ReadMode::kMmap) {
      throw StoreError(path_ + ": cannot mmap (missing or empty file?)");
    }
#if defined(TPUPERF_STORE_HAS_MMAP)
    // Stream fallback: a raw-fd read loop. ::read may return fewer bytes
    // than asked or fail with EINTR; loop until EOF or a hard error (which
    // throws StoreError) rather than treating a short read as the end.
    int fd;
    do {
      fd = ::open(path_.c_str(), O_RDONLY);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
      throw StoreError(path_ + ": cannot open (" +
                       std::string(std::strerror(errno)) + ")");
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      const int saved = errno;
      WarnClose(fd, path_);
      throw StoreError(path_ + ": fstat failed (" +
                       std::string(std::strerror(saved)) + ")");
    }
    owned_.resize(st.st_size > 0 ? static_cast<std::size_t>(st.st_size) : 0);
    std::size_t done = 0;
    while (done < owned_.size()) {
      const ssize_t n = ::read(fd, owned_.data() + done, owned_.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        const int saved = errno;
        WarnClose(fd, path_);
        throw StoreError(path_ + ": read failed at byte " +
                         std::to_string(done) + " (" +
                         std::string(std::strerror(saved)) + ")");
      }
      if (n == 0) break;  // EOF before st_size (file shrank): validate below
      done += static_cast<std::size_t>(n);
    }
    owned_.resize(done);
    WarnClose(fd, path_);
#else
    std::ifstream is(path_, std::ios::binary);
    if (!is) throw StoreError(path_ + ": cannot open");
    owned_.assign(std::istreambuf_iterator<char>(is),
                  std::istreambuf_iterator<char>());
#endif
    data_ = owned_.data();
    size_ = owned_.size();
  }

  if (size_ < kHeaderSize) {
    throw StoreError(path_ + ": truncated header (" + std::to_string(size_) +
                     " bytes, need " + std::to_string(kHeaderSize) + ")");
  }
  if (std::memcmp(data_, kStoreMagic, sizeof(kStoreMagic)) != 0) {
    throw StoreError(path_ + ": bad magic — not a tpuperf dataset store");
  }
  version_ = ReadU32At(data_ + 8);
  if (version_ == 0) {
    throw StoreError(path_ + ": invalid format version 0");
  }
  if (version_ > kStoreFormatVersion) {
    throw StoreError(path_ + ": format version " + std::to_string(version_) +
                     " was written by a newer tpuperf (this build reads up "
                     "to version " +
                     std::to_string(kStoreFormatVersion) +
                     "); refusing to guess at its layout");
  }
  feature_hash_ = ReadU64At(data_ + 12);
  if (feature_hash_ != FeatureConfigHash()) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "feature-config hash mismatch (store 0x%016llx, current "
                  "0x%016llx)",
                  static_cast<unsigned long long>(feature_hash_),
                  static_cast<unsigned long long>(FeatureConfigHash()));
    throw StoreError(path_ + ": " + buf +
                     " — the featurizer layout changed; regenerate the "
                     "dataset cache");
  }
  count_ = ReadU64At(data_ + kRecordCountOffset);
}

DatasetReader::~DatasetReader() {
#if defined(TPUPERF_STORE_HAS_MMAP)
  // Destructors cannot throw; a failed unmap still must not pass silently
  // (it leaks the mapping and hides kernel-side trouble), so warn.
  if (map_base_ != nullptr && ::munmap(map_base_, map_size_) != 0) {
    std::fprintf(stderr, "[tpuperf] warning: munmap(%s) failed: %s\n",
                 path_.c_str(), std::strerror(errno));
  }
#endif
}

void DatasetReader::ForEachRecord(
    const std::function<void(std::uint32_t, const unsigned char*, std::size_t,
                             const std::string&)>& fn) const {
  std::size_t off = kHeaderSize;
  for (std::uint64_t r = 0; r < count_; ++r) {
    const std::string context =
        path_ + ": record " + std::to_string(r);
    // Models mid-stream truncation: the read aborts with the same diagnostic
    // StoreError contract as a real short file, never a partial load.
    if (core::FaultPointFires("store.short_read")) {
      throw StoreError(context +
                       ": injected short read (fault point store.short_read)");
    }
    if (off + kRecordHeaderSize > size_) {
      throw StoreError(context + ": record header runs past end of file "
                       "(truncated store)");
    }
    const std::uint32_t type = ReadU32At(data_ + off);
    const std::uint64_t payload_size = ReadU64At(data_ + off + 4);
    const std::uint64_t checksum = ReadU64At(data_ + off + 12);
    if (payload_size > size_ - (off + kRecordHeaderSize)) {
      throw StoreError(context + ": payload of " +
                       std::to_string(payload_size) +
                       " bytes runs past end of file (truncated store)");
    }
    const unsigned char* payload = data_ + off + kRecordHeaderSize;
    if (Fnv1a64(payload, payload_size) != checksum) {
      throw StoreError(context + " (type " + std::to_string(type) +
                       "): checksum mismatch — corrupted store");
    }
    fn(type, payload, static_cast<std::size_t>(payload_size), context);
    off += kRecordHeaderSize + payload_size;
  }
  if (off != size_) {
    throw StoreError(path_ + ": " + std::to_string(size_ - off) +
                     " trailing bytes after the last record");
  }
}

StoreContents DatasetReader::ReadAll() const {
  StoreContents out;
  ForEachRecord([&out](std::uint32_t type, const unsigned char* payload,
                       std::size_t payload_size, const std::string& context) {
    Dec d(payload, payload_size, context);
    try {
      switch (type) {
        case kProgramRecordType:
          out.programs.push_back(DecodeProgramPayload(d));
          break;
        case kTileKernelRecordType:
          out.tile.kernels.push_back(DecodeTileKernelPayload(d));
          break;
        case kFusionSampleRecordType:
          out.fusion.samples.push_back(DecodeFusionSamplePayload(d));
          break;
        case kFeaturizedRecordType:
          out.features->Add(DecodeFeaturizedPayload(d));
          break;
        case kScalerRecordType: {
          auto [name, scaler] = DecodeScalerPayload(d);
          out.scalers.insert_or_assign(std::move(name), std::move(scaler));
          break;
        }
        case kModelConfigRecordType:
        case kModelParamsRecordType:
          throw StoreError(context + ": model-snapshot record (type " +
                           std::to_string(type) +
                           ") inside a dataset read; open this file with "
                           "serve::LoadModelSnapshot instead");
        default:
          throw StoreError(context + ": unknown record type " +
                           std::to_string(type));
      }
    } catch (const StoreError&) {
      throw;
    } catch (const std::exception& e) {
      throw StoreError(context + ": " + e.what());
    }
    if (!d.AtEnd()) {
      throw StoreError(context + ": trailing bytes inside record payload");
    }
  });
  return out;
}

// ---- Cache-directory layer -------------------------------------------------

std::uint64_t DatasetCacheKey(std::string_view task, std::string_view target,
                              std::span<const ir::Program> corpus,
                              const DatasetOptions& options) {
  std::uint64_t key = sim::HashCombine(HashString(task), HashString(target));
  key = sim::HashCombine(key, corpus.size());
  for (const ir::Program& p : corpus) {
    key = sim::HashCombine(key, HashString(p.name), HashString(p.family),
                           p.graph.Fingerprint());
  }
  key = sim::HashCombine(
      key, static_cast<std::uint64_t>(options.max_tile_configs_per_kernel),
      static_cast<std::uint64_t>(options.max_enumerated_tiles),
      static_cast<std::uint64_t>(options.fusion_configs_per_program),
      options.seed);
  return sim::HashCombine(key, FeatureConfigHash(),
                          static_cast<std::uint64_t>(kStoreFormatVersion));
}

std::string StorePath(const std::string& dir, std::string_view task,
                      std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(key));
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += task;
  path += '_';
  path += buf;
  path += ".tpds";
  return path;
}

TileDataset LoadOrBuildTileDataset(const std::string& cache_dir,
                                   std::span<const ir::Program> corpus,
                                   const sim::TpuSimulator& simulator,
                                   const DatasetOptions& options,
                                   std::shared_ptr<StoredFeatures>* features,
                                   StoreLoadStats* stats) {
  const auto start = Clock::now();
  if (features != nullptr) features->reset();
  if (cache_dir.empty()) {
    TileDataset dataset = BuildTileDataset(corpus, simulator, options);
    FillStats(stats, false, "", start);
    return dataset;
  }
  const std::uint64_t key =
      DatasetCacheKey("tile", simulator.target().name, corpus, options);
  const std::string path = StorePath(cache_dir, "tile", key);
  if (std::filesystem::exists(path)) {
    DatasetReader reader(path);
    StoreContents contents = reader.ReadAll();
    VerifyPrograms(contents, corpus, path);
    if (features != nullptr) *features = contents.features;
    FillStats(stats, true, path, start);
    return std::move(contents.tile);
  }
  TileDataset dataset = BuildTileDataset(corpus, simulator, options);
  std::vector<const KernelRecord*> records;
  records.reserve(dataset.kernels.size());
  for (const TileKernelData& k : dataset.kernels) records.push_back(&k.record);
  auto stored = FeaturizeUnique(records);
  std::filesystem::create_directories(cache_dir);
  DatasetWriter writer(path);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    writer.Add(ProgramInfo{static_cast<int>(i), corpus[i].name,
                           corpus[i].family});
  }
  for (const TileKernelData& k : dataset.kernels) writer.Add(k);
  for (const FeaturizedKernel& fk : stored->entries()) writer.Add(fk);
  writer.Finish();
  if (features != nullptr) *features = std::move(stored);
  FillStats(stats, false, path, start);
  return dataset;
}

FusionDataset LoadOrBuildFusionDataset(
    const std::string& cache_dir, std::span<const ir::Program> corpus,
    const sim::TpuSimulator& simulator,
    const analytical::AnalyticalModel& analytical,
    const DatasetOptions& options,
    std::shared_ptr<StoredFeatures>* features, StoreLoadStats* stats) {
  const auto start = Clock::now();
  if (features != nullptr) features->reset();
  if (cache_dir.empty()) {
    FusionDataset dataset =
        BuildFusionDataset(corpus, simulator, analytical, options);
    FillStats(stats, false, "", start);
    return dataset;
  }
  const std::uint64_t key =
      DatasetCacheKey("fusion", simulator.target().name, corpus, options);
  const std::string path = StorePath(cache_dir, "fusion", key);
  if (std::filesystem::exists(path)) {
    DatasetReader reader(path);
    StoreContents contents = reader.ReadAll();
    VerifyPrograms(contents, corpus, path);
    if (features != nullptr) *features = contents.features;
    FillStats(stats, true, path, start);
    return std::move(contents.fusion);
  }
  FusionDataset dataset =
      BuildFusionDataset(corpus, simulator, analytical, options);
  std::vector<const KernelRecord*> records;
  records.reserve(dataset.samples.size());
  for (const FusionSample& s : dataset.samples) records.push_back(&s.record);
  auto stored = FeaturizeUnique(records);
  std::filesystem::create_directories(cache_dir);
  DatasetWriter writer(path);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    writer.Add(ProgramInfo{static_cast<int>(i), corpus[i].name,
                           corpus[i].family});
  }
  for (const FusionSample& s : dataset.samples) writer.Add(s);
  for (const FeaturizedKernel& fk : stored->entries()) writer.Add(fk);
  writer.Finish();
  if (features != nullptr) *features = std::move(stored);
  FillStats(stats, false, path, start);
  return dataset;
}

}  // namespace tpuperf::data
