#include "dataset/store.h"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <utility>

#include "core/fault_injection.h"
#include "core/thread_pool.h"
#include "sim/hash.h"

#if defined(__unix__) || defined(__APPLE__)
#define TPUPERF_STORE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace tpuperf::data {
namespace {

// Enc/Dec/Fnv1a64 live in dataset/wire.h (shared with serve's snapshots).

std::uint64_t HashString(std::string_view s) noexcept {
  return Fnv1a64(s.data(), s.size());
}

constexpr std::size_t kHeaderSize = kStoreHeaderSize;
constexpr std::size_t kRecordCountOffset = 20;
constexpr std::size_t kRecordHeaderSize = kStoreRecordHeaderSize;

// ---- IR serialization ------------------------------------------------------

void EncodeShape(Enc& e, const ir::Shape& shape) {
  e.U32(static_cast<std::uint32_t>(shape.rank()));
  for (const std::int64_t d : shape.dims()) e.I64(d);
  for (const int l : shape.minor_to_major()) e.I32(l);
  e.U8(static_cast<std::uint8_t>(shape.element_type()));
}

ir::Shape DecodeShape(Dec& d) {
  const std::uint32_t rank = d.U32();
  if (rank > 64) d.Fail("implausible shape rank " + std::to_string(rank));
  std::vector<std::int64_t> dims(rank);
  for (auto& v : dims) v = d.I64();
  std::vector<int> layout(rank);
  for (auto& v : layout) v = d.I32();
  const std::uint8_t etype = d.U8();
  if (etype > static_cast<std::uint8_t>(ir::ElementType::kPred)) {
    d.Fail("unknown element type " + std::to_string(etype));
  }
  ir::Shape shape(std::move(dims), static_cast<ir::ElementType>(etype));
  shape.set_minor_to_major(std::move(layout));
  return shape;
}

void EncodeGraph(Enc& e, const ir::Graph& graph) {
  e.U32(static_cast<std::uint32_t>(graph.num_nodes()));
  for (const ir::Node& n : graph.nodes()) {
    e.U8(static_cast<std::uint8_t>(n.op));
    EncodeShape(e, n.shape);
    e.U32(static_cast<std::uint32_t>(n.operands.size()));
    for (const ir::NodeId id : n.operands) e.I32(id);
    e.U32(static_cast<std::uint32_t>(n.window.dims.size()));
    for (const ir::WindowDim& w : n.window.dims) {
      e.I64(w.size);
      e.I64(w.stride);
      e.I64(w.padding_low);
      e.I64(w.padding_high);
      e.I64(w.dilation);
    }
    e.U32(static_cast<std::uint32_t>(n.reduce_dims.size()));
    for (const int r : n.reduce_dims) e.I32(r);
    e.I64(n.feature_in);
    e.I64(n.feature_out);
    e.U8(n.is_output ? 1 : 0);
  }
}

ir::Graph DecodeGraph(Dec& d) {
  const std::uint32_t num_nodes = d.U32();
  d.RequireCount(num_nodes, 16, "node");
  ir::Graph graph;
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    ir::Node n;
    const std::uint8_t op = d.U8();
    if (op >= static_cast<std::uint8_t>(ir::kNumOpCodes)) {
      d.Fail("unknown opcode " + std::to_string(op) + " in node " +
             std::to_string(i));
    }
    n.op = static_cast<ir::OpCode>(op);
    n.shape = DecodeShape(d);
    const std::uint32_t num_operands = d.U32();
    d.RequireCount(num_operands, 4, "operand");
    n.operands.resize(num_operands);
    for (auto& id : n.operands) id = d.I32();
    const std::uint32_t num_window = d.U32();
    d.RequireCount(num_window, 40, "window dim");
    n.window.dims.resize(num_window);
    for (auto& w : n.window.dims) {
      w.size = d.I64();
      w.stride = d.I64();
      w.padding_low = d.I64();
      w.padding_high = d.I64();
      w.dilation = d.I64();
    }
    const std::uint32_t num_reduce = d.U32();
    d.RequireCount(num_reduce, 4, "reduce dim");
    n.reduce_dims.resize(num_reduce);
    for (auto& r : n.reduce_dims) r = d.I32();
    n.feature_in = d.I64();
    n.feature_out = d.I64();
    n.is_output = d.U8() != 0;
    graph.AddNode(std::move(n));  // re-validates the operand-order invariant
  }
  return graph;
}

void EncodeTile(Enc& e, const ir::TileConfig& tile) {
  e.U32(static_cast<std::uint32_t>(tile.dims.size()));
  for (const std::int64_t v : tile.dims) e.I64(v);
}

ir::TileConfig DecodeTile(Dec& d) {
  const std::uint32_t rank = d.U32();
  if (rank > 64) d.Fail("implausible tile rank " + std::to_string(rank));
  ir::TileConfig tile;
  tile.dims.resize(rank);
  for (auto& v : tile.dims) v = d.I64();
  return tile;
}

ir::KernelKind DecodeKernelKind(Dec& d) {
  const std::uint8_t kind = d.U8();
  if (kind > static_cast<std::uint8_t>(ir::KernelKind::kDataFormatting)) {
    d.Fail("unknown kernel kind " + std::to_string(kind));
  }
  return static_cast<ir::KernelKind>(kind);
}

// Inline (tag 0 / pre-v3) kernel record: the full graph in place. The v3
// writer always dictionary-compresses, so only the decoder survives.
KernelRecord DecodeKernelRecordInline(Dec& d) {
  KernelRecord record;
  record.kernel.graph = DecodeGraph(d);
  record.kernel.kind = DecodeKernelKind(d);
  record.fingerprint = d.U64();
  record.program_id = d.I32();
  record.family = d.Str();
  if (record.fingerprint != record.kernel.graph.Fingerprint()) {
    d.Fail("stored fingerprint does not match the decoded graph "
           "(serialization drift or tampering)");
  }
  return record;
}

// v3 layout tags for kernel-bearing payloads. The writer always emits
// dictionary references; inline stays decodable for forward flexibility.
constexpr std::uint8_t kKernelInlineTag = 0;
constexpr std::uint8_t kKernelDictRefTag = 1;

// Dictionary reference (tag 1): graph + kind + fingerprint live in a
// kGraphDictRecordType record of the same file; only the per-sample
// fields are repeated here.
void EncodeKernelRecordRef(Enc& e, const KernelRecord& record,
                           std::uint32_t dict_index) {
  e.U8(kKernelDictRefTag);
  e.U32(dict_index);
  e.I32(record.program_id);
  e.Str(record.family);
}

// Version-aware kernel-record decode: pre-v3 payloads have no tag byte.
KernelRecord DecodeKernelRecord(Dec& d, std::uint32_t version,
                                const GraphDict& dict) {
  if (version < 3) return DecodeKernelRecordInline(d);
  const std::uint8_t tag = d.U8();
  if (tag == kKernelInlineTag) return DecodeKernelRecordInline(d);
  if (tag != kKernelDictRefTag) {
    d.Fail("unknown kernel-record layout tag " + std::to_string(tag));
  }
  const std::uint32_t index = d.U32();
  const GraphDict::Entry& entry = dict.At(index, d.context());
  KernelRecord record;
  record.kernel = entry.kernel;
  record.fingerprint = entry.fingerprint;
  record.program_id = d.I32();
  record.family = d.Str();
  return record;
}

// ---- Record payloads -------------------------------------------------------

std::string EncodeProgramPayload(const ProgramInfo& p) {
  Enc e;
  e.I32(p.program_id);
  e.Str(p.name);
  e.Str(p.family);
  return e.bytes();
}

ProgramInfo DecodeProgramPayload(Dec& d) {
  ProgramInfo p;
  p.program_id = d.I32();
  p.name = d.Str();
  p.family = d.Str();
  return p;
}

std::string EncodeGraphDictPayload(const KernelRecord& record) {
  Enc e;
  EncodeGraph(e, record.kernel.graph);
  e.U8(static_cast<std::uint8_t>(record.kernel.kind));
  e.U64(record.fingerprint);
  return e.bytes();
}

std::string EncodeTileKernelPayload(const TileKernelData& k,
                                    std::uint32_t dict_index) {
  Enc e;
  EncodeKernelRecordRef(e, k.record, dict_index);
  if (k.configs.size() != k.runtimes.size()) {
    throw StoreError("tile kernel has " + std::to_string(k.configs.size()) +
                     " configs but " + std::to_string(k.runtimes.size()) +
                     " runtimes; refusing to serialize");
  }
  e.U32(static_cast<std::uint32_t>(k.configs.size()));
  for (std::size_t i = 0; i < k.configs.size(); ++i) {
    EncodeTile(e, k.configs[i]);
    e.F64(k.runtimes[i]);
  }
  return e.bytes();
}

TileKernelData DecodeTileKernelPayload(Dec& d, std::uint32_t version,
                                       const GraphDict& dict) {
  TileKernelData k;
  k.record = DecodeKernelRecord(d, version, dict);
  const std::uint32_t count = d.U32();
  k.configs.reserve(count);
  k.runtimes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    k.configs.push_back(DecodeTile(d));
    k.runtimes.push_back(d.F64());
  }
  return k;
}

std::string EncodeFusionSamplePayload(const FusionSample& s,
                                      std::uint32_t dict_index) {
  Enc e;
  EncodeKernelRecordRef(e, s.record, dict_index);
  EncodeTile(e, s.tile);
  e.F64(s.runtime);
  e.U8(s.from_default_config ? 1 : 0);
  return e.bytes();
}

FusionSample DecodeFusionSamplePayload(Dec& d, std::uint32_t version,
                                       const GraphDict& dict) {
  FusionSample s;
  s.record = DecodeKernelRecord(d, version, dict);
  s.tile = DecodeTile(d);
  s.runtime = d.F64();
  s.from_default_config = d.U8() != 0;
  return s;
}

std::string EncodeFeaturizedPayload(const FeaturizedKernel& fk) {
  Enc e;
  e.U64(fk.fingerprint);
  e.U64(fk.structural_sig);
  const feat::KernelFeatures& kf = fk.features;
  const auto n = static_cast<std::uint32_t>(kf.opcode_ids.size());
  e.U32(n);
  e.U32(static_cast<std::uint32_t>(feat::kNodeScalarFeatures));
  for (const int id : kf.opcode_ids) e.I32(id);
  for (const auto& row : kf.node_scalars) {
    if (row.size() != static_cast<std::size_t>(feat::kNodeScalarFeatures)) {
      throw StoreError("featurized record has a node-scalar row of width " +
                       std::to_string(row.size()) + "; refusing to serialize");
    }
    for (const double v : row) e.F64(v);
  }
  // Adjacency (operand lists) in CSR form: row_ptr then column indices.
  std::uint32_t nnz = 0;
  for (const auto& ops : kf.operand_lists) {
    nnz += static_cast<std::uint32_t>(ops.size());
  }
  e.U32(nnz);
  std::uint32_t row_start = 0;
  e.U32(0);
  for (const auto& ops : kf.operand_lists) {
    row_start += static_cast<std::uint32_t>(ops.size());
    e.U32(row_start);
  }
  for (const auto& ops : kf.operand_lists) {
    for (const int id : ops) e.I32(id);
  }
  e.U32(static_cast<std::uint32_t>(kf.static_perf.size()));
  for (const double v : kf.static_perf) e.F64(v);
  return e.bytes();
}

FeaturizedKernel DecodeFeaturizedPayload(Dec& d) {
  FeaturizedKernel fk;
  fk.fingerprint = d.U64();
  fk.structural_sig = d.U64();
  const std::uint32_t n = d.U32();
  const std::uint32_t width = d.U32();
  if (width != static_cast<std::uint32_t>(feat::kNodeScalarFeatures)) {
    d.Fail("node-scalar width " + std::to_string(width) +
           " does not match the current featurizer (" +
           std::to_string(feat::kNodeScalarFeatures) + ")");
  }
  d.RequireCount(n, 4, "featurized node");
  feat::KernelFeatures& kf = fk.features;
  kf.opcode_ids.resize(n);
  for (auto& id : kf.opcode_ids) {
    id = d.I32();
    if (id < 0 || id >= ir::kNumOpCodes) {
      d.Fail("featurized opcode id " + std::to_string(id) + " out of range");
    }
  }
  d.RequireCount(static_cast<std::uint64_t>(n) * width, 8, "node scalar");
  kf.node_scalars.assign(n, std::vector<double>(
                                static_cast<std::size_t>(width)));
  for (auto& row : kf.node_scalars) {
    for (auto& v : row) v = d.F64();
  }
  const std::uint32_t nnz = d.U32();
  d.RequireCount(nnz, 4, "CSR edge");
  std::vector<std::uint32_t> row_ptr(n + 1);
  for (auto& v : row_ptr) v = d.U32();
  if (row_ptr.front() != 0 || row_ptr.back() != nnz) {
    d.Fail("CSR row pointers do not cover the stored edges");
  }
  kf.operand_lists.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (row_ptr[i + 1] < row_ptr[i]) d.Fail("CSR row pointers not monotone");
    kf.operand_lists[i].resize(row_ptr[i + 1] - row_ptr[i]);
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    for (auto& id : kf.operand_lists[i]) {
      id = d.I32();
      if (id < 0 || static_cast<std::uint32_t>(id) >= i) {
        d.Fail("CSR operand " + std::to_string(id) + " of node " +
               std::to_string(i) + " breaks the topological invariant");
      }
    }
  }
  const std::uint32_t perf = d.U32();
  if (perf != static_cast<std::uint32_t>(feat::kStaticPerfFeatures)) {
    d.Fail("static-perf width " + std::to_string(perf) +
           " does not match the current featurizer");
  }
  kf.static_perf.resize(perf);
  for (auto& v : kf.static_perf) v = d.F64();
  return fk;
}

std::string EncodeScalerPayload(const std::string& name,
                                const feat::FeatureScaler& scaler) {
  Enc e;
  e.Str(name);
  e.U32(static_cast<std::uint32_t>(scaler.num_features()));
  e.I64(scaler.observed());
  for (const double v : scaler.mins()) e.F64(v);
  for (const double v : scaler.maxs()) e.F64(v);
  return e.bytes();
}

std::pair<std::string, feat::FeatureScaler> DecodeScalerPayload(Dec& d) {
  std::string name = d.Str();
  const std::uint32_t width = d.U32();
  if (width > (1u << 20)) d.Fail("implausible scaler width");
  const long observed = static_cast<long>(d.I64());
  std::vector<double> mins(width);
  for (auto& v : mins) v = d.F64();
  std::vector<double> maxs(width);
  for (auto& v : maxs) v = d.F64();
  return {std::move(name),
          feat::FeatureScaler::FromStats(std::move(mins), std::move(maxs),
                                         observed)};
}

// Decodes one record into StoreContents, threading the file's graph
// dictionary. Shared by ReadAll (single file) and ReadStoreContents
// (per part, merging in record order).
void DecodeRecordInto(StoreContents& out, const RecordView& view,
                      std::uint32_t version, GraphDict& dict) {
  Dec d(view.payload.data(), view.payload.size(), view.context);
  try {
    switch (view.type) {
      case kProgramRecordType:
        out.programs.push_back(DecodeProgramPayload(d));
        break;
      case kTileKernelRecordType:
        out.tile.kernels.push_back(DecodeTileKernelPayload(d, version, dict));
        break;
      case kFusionSampleRecordType:
        out.fusion.samples.push_back(
            DecodeFusionSamplePayload(d, version, dict));
        break;
      case kFeaturizedRecordType:
        out.features->Add(DecodeFeaturizedPayload(d));
        break;
      case kScalerRecordType: {
        auto [name, scaler] = DecodeScalerPayload(d);
        out.scalers.insert_or_assign(std::move(name), std::move(scaler));
        break;
      }
      case kGraphDictRecordType:
        dict.Add(view);
        return;  // GraphDict::Add runs its own trailing-bytes check
      case kManifestRecordType:
        throw StoreError(view.context +
                         ": sharded-store manifest record inside a plain "
                         "dataset read; open this path with "
                         "data::ReadStoreContents instead");
      case kModelConfigRecordType:
      case kModelParamsRecordType:
        throw StoreError(view.context + ": model-snapshot record (type " +
                         std::to_string(view.type) +
                         ") inside a dataset read; open this file with "
                         "serve::LoadModelSnapshot instead");
      default:
        throw StoreError(view.context + ": unknown record type " +
                         std::to_string(view.type));
    }
  } catch (const StoreError&) {
    throw;
  } catch (const std::exception& e) {
    throw StoreError(view.context + ": " + e.what());
  }
  if (!d.AtEnd()) {
    throw StoreError(view.context + ": trailing bytes inside record payload");
  }
}

// ---- Shared build-path helpers ---------------------------------------------

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Featurizes every unique (fingerprint, signature) kernel once, sharded
// across the global thread pool. Output order is the deterministic
// first-seen record order regardless of pool width.
std::shared_ptr<StoredFeatures> FeaturizeUnique(
    const std::vector<const KernelRecord*>& records) {
  std::vector<const KernelRecord*> unique;
  std::vector<std::uint64_t> sigs;
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  for (const KernelRecord* rec : records) {
    const std::uint64_t sig = rec->kernel.graph.StructuralSignature();
    if (seen.insert({rec->fingerprint, sig}).second) {
      unique.push_back(rec);
      sigs.push_back(sig);
    }
  }
  std::vector<FeaturizedKernel> featurized(unique.size());
  const auto body = [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t i = b0; i < b1; ++i) {
      const auto u = static_cast<std::size_t>(i);
      featurized[u].fingerprint = unique[u]->fingerprint;
      featurized[u].structural_sig = sigs[u];
      featurized[u].features =
          feat::FeaturizeKernel(unique[u]->kernel.graph);
    }
  };
  const auto n = static_cast<std::int64_t>(unique.size());
  if (n > 1 && core::ThreadPool::Global().size() > 1) {
    core::ParallelFor(0, n, 1, body);
  } else {
    body(0, n);
  }
  auto out = std::make_shared<StoredFeatures>();
  for (FeaturizedKernel& fk : featurized) out->Add(std::move(fk));
  return out;
}

void VerifyPrograms(const StoreContents& contents,
                    std::span<const ir::Program> corpus,
                    const std::string& path) {
  if (contents.programs.size() != corpus.size()) {
    throw StoreError(path + ": store was built from a different corpus (" +
                     std::to_string(contents.programs.size()) +
                     " programs stored, " + std::to_string(corpus.size()) +
                     " expected)");
  }
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const ProgramInfo& p = contents.programs[i];
    if (p.program_id != static_cast<int>(i) || p.name != corpus[i].name ||
        p.family != corpus[i].family) {
      throw StoreError(path + ": program " + std::to_string(i) +
                       " is \"" + p.name + "\" in the store but \"" +
                       corpus[i].name + "\" in the generating corpus");
    }
  }
}

void FillStats(StoreLoadStats* stats, bool hit, std::string path,
               Clock::time_point start) {
  if (stats == nullptr) return;
  stats->cache_hit = hit;
  stats->path = std::move(path);
  stats->seconds = Seconds(start);
}

}  // namespace

// ---- StoredFeatures --------------------------------------------------------

void StoredFeatures::Add(FeaturizedKernel kernel) {
  if (Lookup(kernel.fingerprint, kernel.structural_sig) != nullptr) return;
  entries_.push_back(std::move(kernel));
  const FeaturizedKernel& stored = entries_.back();
  by_fingerprint_[stored.fingerprint].push_back(&stored);
}

const feat::KernelFeatures* StoredFeatures::Lookup(
    std::uint64_t fingerprint, std::uint64_t structural_sig) const {
  const auto it = by_fingerprint_.find(fingerprint);
  if (it == by_fingerprint_.end()) return nullptr;
  for (const FeaturizedKernel* fk : it->second) {
    if (fk->structural_sig == structural_sig) return &fk->features;
  }
  return nullptr;
}

// ---- GraphDict -------------------------------------------------------------

void GraphDict::Add(const RecordView& record) {
  Dec d(record.payload.data(), record.payload.size(), record.context);
  Entry entry;
  entry.kernel.graph = DecodeGraph(d);
  entry.kernel.kind = DecodeKernelKind(d);
  entry.fingerprint = d.U64();
  if (!d.AtEnd()) d.Fail("trailing bytes inside record payload");
  if (entry.fingerprint != entry.kernel.graph.Fingerprint()) {
    d.Fail("stored dictionary fingerprint does not match the decoded graph "
           "(serialization drift or tampering)");
  }
  entry.structural_sig = entry.kernel.graph.StructuralSignature();
  entries_.push_back(std::move(entry));
}

const GraphDict::Entry& GraphDict::At(std::uint32_t index,
                                      const std::string& context) const {
  if (index >= entries_.size()) {
    throw StoreError(context + ": kernel record references graph-dictionary "
                     "index " + std::to_string(index) + " but only " +
                     std::to_string(entries_.size()) +
                     " dictionary records precede it (corrupt store)");
  }
  return entries_[index];
}

// ---- Record-level decode entry points --------------------------------------

TileKernelData DecodeTileKernelRecord(const RecordView& record,
                                      std::uint32_t version,
                                      const GraphDict& dict) {
  Dec d(record.payload.data(), record.payload.size(), record.context);
  TileKernelData k = DecodeTileKernelPayload(d, version, dict);
  if (!d.AtEnd()) d.Fail("trailing bytes inside record payload");
  return k;
}

FusionSample DecodeFusionSampleRecord(const RecordView& record,
                                      std::uint32_t version,
                                      const GraphDict& dict) {
  Dec d(record.payload.data(), record.payload.size(), record.context);
  FusionSample s = DecodeFusionSamplePayload(d, version, dict);
  if (!d.AtEnd()) d.Fail("trailing bytes inside record payload");
  return s;
}

FeaturizedKernel DecodeFeaturizedRecord(const RecordView& record) {
  Dec d(record.payload.data(), record.payload.size(), record.context);
  FeaturizedKernel fk = DecodeFeaturizedPayload(d);
  if (!d.AtEnd()) d.Fail("trailing bytes inside record payload");
  return fk;
}

std::pair<std::uint64_t, std::uint64_t> PeekFeaturizedKey(
    const RecordView& record) {
  Dec d(record.payload.data(), record.payload.size(), record.context);
  const std::uint64_t fingerprint = d.U64();
  const std::uint64_t sig = d.U64();
  return {fingerprint, sig};
}

// ---- Format-level helpers --------------------------------------------------

std::uint64_t FeatureConfigHash() {
  return sim::HashCombine(
      0xFEA701ull, static_cast<std::uint64_t>(feat::kNodeScalarFeatures),
      static_cast<std::uint64_t>(feat::kTileFeatures),
      static_cast<std::uint64_t>(feat::kStaticPerfFeatures),
      static_cast<std::uint64_t>(ir::kMaxEncodedRank),
      static_cast<std::uint64_t>(ir::kNumOpCodes));
}

// ---- DatasetWriter ---------------------------------------------------------
//
// On POSIX builds the writer drives a raw file descriptor with explicit
// short-write/EINTR loops: ::write may transfer fewer bytes than asked (or
// fail with EINTR when a signal lands mid-call), and std::ofstream gives no
// way to retry the remainder — it just poisons the stream. Every syscall
// result is checked; failures throw StoreError naming the file and errno.
// Non-unix builds keep a buffered std::ofstream.

struct DatasetWriter::Part {
  std::string tmp_path;
  std::string final_path;
  std::string file;  // final basename, for the manifest
#if defined(TPUPERF_STORE_HAS_MMAP)
  int fd = -1;
#else
  std::unique_ptr<std::ofstream> os;
#endif
  std::uint64_t records = 0;
  std::uint64_t bytes = kHeaderSize;
  std::uint64_t fnv = kFnv1a64Seed;  // running hash of the records region

  void Write(const char* data, std::size_t size);
};

namespace {

#if defined(TPUPERF_STORE_HAS_MMAP)

int OpenForWrite(const std::string& path) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

// Writes all `size` bytes to `fd`, looping over short writes and retrying
// EINTR; throws StoreError if the kernel reports an error or no progress.
void WriteAll(int fd, const char* data, std::size_t size,
              const std::string& path) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw StoreError(path + ": write failed (" +
                       std::string(std::strerror(errno)) + ")");
    }
    if (n == 0) {
      // Regular files never return 0 from a nonzero-size write, but a
      // surprise here must not become an infinite loop.
      throw StoreError(path + ": write made no progress");
    }
    done += static_cast<std::size_t>(n);
  }
}

void WarnClose(int fd, const std::string& path) {
  if (::close(fd) != 0) {
    std::fprintf(stderr, "[tpuperf] warning: close(%s) failed: %s\n",
                 path.c_str(), std::strerror(errno));
  }
}

#endif

// Unique temporary suffix per writer part: concurrent cold builds of the
// same key (shared cache dirs) each complete their own file, and the atomic
// rename makes the last finisher win with a consistent store.
std::string TmpSuffix(const void* self) {
  return ".tmp." +
         std::to_string(static_cast<unsigned long long>(
             Clock::now().time_since_epoch().count())) +
         "." + std::to_string(reinterpret_cast<std::uintptr_t>(self));
}

}  // namespace

void DatasetWriter::Part::Write(const char* data, std::size_t size) {
#if defined(TPUPERF_STORE_HAS_MMAP)
  WriteAll(fd, data, size, tmp_path);
#else
  os->write(data, static_cast<std::streamsize>(size));
  if (!*os) throw StoreError(tmp_path + ": write failed");
#endif
}

DatasetWriter::DatasetWriter(std::string path, std::uint64_t max_part_bytes)
    : path_(std::move(path)), max_part_bytes_(max_part_bytes) {
  OpenPart();
}

DatasetWriter::~DatasetWriter() {
  if (part_ != nullptr) {
#if defined(TPUPERF_STORE_HAS_MMAP)
    WarnClose(part_->fd, part_->tmp_path);
#else
    part_->os.reset();
#endif
    std::error_code ec;
    std::filesystem::remove(part_->tmp_path, ec);
    part_.reset();
  }
  if (!finished_) {
    // Sharded mode: parts already renamed into place are orphans without a
    // manifest; remove them so an aborted build leaves nothing behind.
    for (const PartInfo& info : parts_) {
      std::error_code ec;
      std::filesystem::remove(
          StorePartPath(path_, info.file), ec);
    }
  }
}

void DatasetWriter::OpenPart() {
  auto part = std::make_unique<Part>();
  if (max_part_bytes_ > 0) {
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), ".p%03zu", parts_.size());
    part->final_path = path_ + suffix;
  } else {
    part->final_path = path_;
  }
  part->file = std::filesystem::path(part->final_path).filename().string();
  part->tmp_path = part->final_path + TmpSuffix(this);
  Enc e;
  e.U32(kStoreFormatVersion);
  e.U64(FeatureConfigHash());
  e.U64(0);  // record count, patched by ClosePart()
#if defined(TPUPERF_STORE_HAS_MMAP)
  const int fd = OpenForWrite(part->tmp_path);
  if (fd < 0) {
    throw StoreError(part->tmp_path + ": cannot open for writing (" +
                     std::string(std::strerror(errno)) + ")");
  }
  part->fd = fd;
  try {
    WriteAll(fd, kStoreMagic, sizeof(kStoreMagic), part->tmp_path);
    WriteAll(fd, e.bytes().data(), e.bytes().size(), part->tmp_path);
  } catch (...) {
    WarnClose(fd, part->tmp_path);
    std::error_code ec;
    std::filesystem::remove(part->tmp_path, ec);
    throw;
  }
#else
  part->os = std::make_unique<std::ofstream>(
      part->tmp_path, std::ios::binary | std::ios::trunc);
  if (!*part->os) {
    throw StoreError(part->tmp_path + ": cannot open for writing");
  }
  part->os->write(kStoreMagic, sizeof(kStoreMagic));
  part->os->write(e.bytes().data(),
                  static_cast<std::streamsize>(e.bytes().size()));
#endif
  part_ = std::move(part);
  dict_.clear();  // dictionaries never span part files
}

void DatasetWriter::ClosePart() {
  if (part_ == nullptr) throw StoreError(path_ + ": writer has no open file");
  Enc e;
  e.U64(part_->records);
#if defined(TPUPERF_STORE_HAS_MMAP)
  const int fd = part_->fd;
  if (::lseek(fd, static_cast<off_t>(kRecordCountOffset), SEEK_SET) < 0) {
    throw StoreError(part_->tmp_path + ": seek to record count failed (" +
                     std::string(std::strerror(errno)) + ")");
  }
  WriteAll(fd, e.bytes().data(), e.bytes().size(), part_->tmp_path);
  part_->fd = -1;
  // A failed close can mean the kernel could not commit buffered data;
  // surfacing it here keeps a corrupt store from being renamed into place.
  if (::close(fd) != 0) {
    throw StoreError(part_->tmp_path + ": close failed (" +
                     std::string(std::strerror(errno)) + ")");
  }
#else
  auto& os = *part_->os;
  os.seekp(static_cast<std::streamoff>(kRecordCountOffset));
  os.write(e.bytes().data(), static_cast<std::streamsize>(e.bytes().size()));
  os.flush();
  const bool ok = static_cast<bool>(os);
  part_->os.reset();
  if (!ok) throw StoreError(part_->tmp_path + ": flush failed");
#endif
  std::error_code ec;
  std::filesystem::rename(part_->tmp_path, part_->final_path, ec);
  if (ec) {
    throw StoreError(part_->final_path + ": rename from temporary failed (" +
                     ec.message() + ")");
  }
  parts_.push_back(PartInfo{part_->file, part_->records, part_->bytes,
                            part_->fnv});
  part_.reset();
}

void DatasetWriter::MaybeRoll() {
  if (max_part_bytes_ == 0 || part_ == nullptr) return;
  if (part_->records == 0 || part_->bytes < max_part_bytes_) return;
  ClosePart();
  OpenPart();
}

void DatasetWriter::WriteRecord(std::uint32_t type,
                                const std::string& payload) {
  if (finished_ || part_ == nullptr) {
    throw StoreError(path_ + ": writer already finished");
  }
  Enc header;
  header.U32(type);
  header.U64(payload.size());
  header.U64(Fnv1a64(payload.data(), payload.size()));
  part_->Write(header.bytes().data(), header.bytes().size());
  part_->Write(payload.data(), payload.size());
  part_->fnv = Fnv1a64Continue(part_->fnv, header.bytes().data(),
                               header.bytes().size());
  part_->fnv = Fnv1a64Continue(part_->fnv, payload.data(), payload.size());
  part_->bytes += kRecordHeaderSize + payload.size();
  ++part_->records;
  ++count_;
}

std::uint32_t DatasetWriter::DictIndexFor(const KernelRecord& record) {
  const std::uint64_t sig = record.kernel.graph.StructuralSignature();
  const auto key = std::make_pair(record.fingerprint, sig);
  const auto it = dict_.find(key);
  if (it != dict_.end()) return it->second;
  const auto index = static_cast<std::uint32_t>(dict_.size());
  WriteRecord(kGraphDictRecordType, EncodeGraphDictPayload(record));
  dict_.emplace(key, index);
  return index;
}

void DatasetWriter::AddRaw(std::uint32_t type, const std::string& payload) {
  MaybeRoll();
  WriteRecord(type, payload);
}

void DatasetWriter::Add(const ProgramInfo& program) {
  MaybeRoll();
  WriteRecord(kProgramRecordType, EncodeProgramPayload(program));
}

void DatasetWriter::Add(const TileKernelData& kernel) {
  // Roll BEFORE the dictionary lookup so a freshly emitted dictionary
  // record and its referencing kernel record always land in the same part.
  MaybeRoll();
  const std::uint32_t dict_index = DictIndexFor(kernel.record);
  WriteRecord(kTileKernelRecordType,
              EncodeTileKernelPayload(kernel, dict_index));
}

void DatasetWriter::Add(const FusionSample& sample) {
  MaybeRoll();
  const std::uint32_t dict_index = DictIndexFor(sample.record);
  WriteRecord(kFusionSampleRecordType,
              EncodeFusionSamplePayload(sample, dict_index));
}

void DatasetWriter::Add(const FeaturizedKernel& kernel) {
  MaybeRoll();
  WriteRecord(kFeaturizedRecordType, EncodeFeaturizedPayload(kernel));
}

void DatasetWriter::AddScaler(const std::string& name,
                              const feat::FeatureScaler& scaler) {
  MaybeRoll();
  WriteRecord(kScalerRecordType, EncodeScalerPayload(name, scaler));
}

std::size_t DatasetWriter::part_count() const noexcept {
  return parts_.size() + (part_ != nullptr ? 1 : 0);
}

void DatasetWriter::Finish() {
  if (finished_) return;
  ClosePart();
  if (max_part_bytes_ > 0) {
    // Commit point of a sharded store: the manifest is renamed into place
    // only after every part. Until then readers see no store at all.
    Enc e;
    e.U32(static_cast<std::uint32_t>(parts_.size()));
    for (const PartInfo& info : parts_) {
      e.Str(info.file);
      e.U64(info.records);
      e.U64(info.bytes);
      e.U64(info.records_fnv);
    }
    DatasetWriter manifest(path_);
    manifest.AddRaw(kManifestRecordType, e.bytes());
    manifest.Finish();
  }
  finished_ = true;
}

// ---- DatasetReader ---------------------------------------------------------

DatasetReader::DatasetReader(std::string path, ReadMode mode)
    : path_(std::move(path)) {
#if defined(TPUPERF_STORE_HAS_MMAP)
  if (mode == ReadMode::kAuto || mode == ReadMode::kMmap) {
    const int fd = ::open(path_.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st{};
      if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        void* base = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                            PROT_READ, MAP_PRIVATE, fd, 0);
        if (base != MAP_FAILED) {
          map_base_ = base;
          map_size_ = static_cast<std::size_t>(st.st_size);
          data_ = static_cast<const unsigned char*>(base);
          size_ = map_size_;
          mapped_ = true;
        }
      }
      WarnClose(fd, path_);
    }
  }
#else
  if (mode == ReadMode::kMmap) {
    throw StoreError(path_ + ": mmap reads are not supported on this platform");
  }
#endif
  if (!mapped_) {
    if (mode == ReadMode::kMmap) {
      throw StoreError(path_ + ": cannot mmap (missing or empty file?)");
    }
#if defined(TPUPERF_STORE_HAS_MMAP)
    // Stream mode keeps the descriptor open and preads records on demand —
    // the file is never buffered whole, so memory stays O(largest record)
    // and filtered walks seek past unwanted payloads.
    int fd;
    do {
      fd = ::open(path_.c_str(), O_RDONLY);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
      throw StoreError(path_ + ": cannot open (" +
                       std::string(std::strerror(errno)) + ")");
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      const int saved = errno;
      WarnClose(fd, path_);
      throw StoreError(path_ + ": fstat failed (" +
                       std::string(std::strerror(saved)) + ")");
    }
    fd_ = fd;
    size_ = st.st_size > 0 ? static_cast<std::size_t>(st.st_size) : 0;
#else
    std::ifstream is(path_, std::ios::binary);
    if (!is) throw StoreError(path_ + ": cannot open");
    owned_.assign(std::istreambuf_iterator<char>(is),
                  std::istreambuf_iterator<char>());
    data_ = owned_.data();
    size_ = owned_.size();
#endif
  }

  if (size_ < kHeaderSize) {
    throw StoreError(path_ + ": truncated header (" + std::to_string(size_) +
                     " bytes, need " + std::to_string(kHeaderSize) + ")");
  }
  const unsigned char* hdr = BytesAt(0, kHeaderSize, header_scratch_);
  if (std::memcmp(hdr, kStoreMagic, sizeof(kStoreMagic)) != 0) {
    throw StoreError(path_ + ": bad magic — not a tpuperf dataset store");
  }
  version_ = ReadU32At(hdr + 8);
  if (version_ == 0) {
    throw StoreError(path_ + ": invalid format version 0");
  }
  if (version_ > kStoreFormatVersion) {
    throw StoreError(path_ + ": format version " + std::to_string(version_) +
                     " was written by a newer tpuperf (this build reads up "
                     "to version " +
                     std::to_string(kStoreFormatVersion) +
                     "); refusing to guess at its layout");
  }
  feature_hash_ = ReadU64At(hdr + 12);
  if (feature_hash_ != FeatureConfigHash()) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "feature-config hash mismatch (store 0x%016llx, current "
                  "0x%016llx)",
                  static_cast<unsigned long long>(feature_hash_),
                  static_cast<unsigned long long>(FeatureConfigHash()));
    throw StoreError(path_ + ": " + buf +
                     " — the featurizer layout changed; regenerate the "
                     "dataset cache");
  }
  count_ = ReadU64At(hdr + kRecordCountOffset);
  // Peek the first record's type for manifest detection (cheap: 4 bytes).
  if (count_ > 0 && size_ >= kHeaderSize + 4) {
    first_record_type_ =
        ReadU32At(BytesAt(kHeaderSize, 4, header_scratch_));
  }
}

DatasetReader::~DatasetReader() {
#if defined(TPUPERF_STORE_HAS_MMAP)
  // Destructors cannot throw; a failed unmap still must not pass silently
  // (it leaks the mapping and hides kernel-side trouble), so warn.
  if (map_base_ != nullptr && ::munmap(map_base_, map_size_) != 0) {
    std::fprintf(stderr, "[tpuperf] warning: munmap(%s) failed: %s\n",
                 path_.c_str(), std::strerror(errno));
  }
  if (fd_ >= 0) WarnClose(fd_, path_);
#endif
}

const unsigned char* DatasetReader::BytesAt(
    std::uint64_t offset, std::size_t size,
    std::vector<unsigned char>& scratch) const {
  if (data_ != nullptr) return data_ + offset;  // mmap / owned buffer
#if defined(TPUPERF_STORE_HAS_MMAP)
  scratch.resize(size);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::pread(fd_, scratch.data() + done, size - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw StoreError(path_ + ": read failed at byte " +
                       std::to_string(offset + done) + " (" +
                       std::string(std::strerror(errno)) + ")");
    }
    if (n == 0) {
      throw StoreError(path_ + ": unexpected end of file at byte " +
                       std::to_string(offset + done) +
                       " (file shrank mid-read?)");
    }
    done += static_cast<std::size_t>(n);
  }
  return scratch.data();
#else
  throw StoreError(path_ + ": internal error — no backing buffer");
#endif
}

bool DatasetReader::sharded_manifest() const noexcept {
  return count_ == 1 && first_record_type_ == kManifestRecordType;
}

void DatasetReader::ForEachRecord(
    const std::function<void(const RecordView&)>& fn,
    std::span<const std::uint32_t> types) const {
  std::uint64_t off = kHeaderSize;
  for (std::uint64_t r = 0; r < count_; ++r) {
    // Models mid-stream truncation: the read aborts with the same diagnostic
    // StoreError contract as a real short file, never a partial load.
    if (core::FaultPointFires("store.short_read")) {
      throw StoreError(path_ + ": record " + std::to_string(r) +
                       ": injected short read (fault point store.short_read)");
    }
    if (off + kRecordHeaderSize > size_) {
      throw StoreError(path_ + ": record " + std::to_string(r) +
                       ": record header runs past end of file "
                       "(truncated store)");
    }
    const unsigned char* hdr =
        BytesAt(off, kRecordHeaderSize, header_scratch_);
    const std::uint32_t type = ReadU32At(hdr);
    const std::uint64_t payload_size = ReadU64At(hdr + 4);
    const std::uint64_t checksum = ReadU64At(hdr + 12);
    if (payload_size > size_ - (off + kRecordHeaderSize)) {
      throw StoreError(path_ + ": record " + std::to_string(r) +
                       ": payload of " + std::to_string(payload_size) +
                       " bytes runs past end of file (truncated store)");
    }
    const bool wanted =
        types.empty() ||
        std::find(types.begin(), types.end(), type) != types.end();
    if (wanted) {
      RecordView view;
      view.type = type;
      view.offset = off;
      view.context = path_ + ": record " + std::to_string(r);
      const unsigned char* payload = BytesAt(
          off + kRecordHeaderSize, static_cast<std::size_t>(payload_size),
          scratch_);
      if (Fnv1a64(payload, payload_size) != checksum) {
        throw StoreError(view.context + " (type " + std::to_string(type) +
                         "): checksum mismatch — corrupted store");
      }
      view.payload = std::span<const unsigned char>(
          payload, static_cast<std::size_t>(payload_size));
      fn(view);
    }
    // Filtered-out records are skipped by advancing the offset — a stream
    // reader never buffers (or checksums) payloads nobody asked for.
    off += kRecordHeaderSize + payload_size;
  }
  if (off != size_) {
    throw StoreError(path_ + ": " + std::to_string(size_ - off) +
                     " trailing bytes after the last record");
  }
}

void DatasetReader::ScanRecords(
    const std::function<void(std::uint32_t, std::uint64_t, std::uint64_t)>&
        fn) const {
  std::uint64_t off = kHeaderSize;
  for (std::uint64_t r = 0; r < count_; ++r) {
    if (off + kRecordHeaderSize > size_) {
      throw StoreError(path_ + ": record " + std::to_string(r) +
                       ": record header runs past end of file "
                       "(truncated store)");
    }
    const unsigned char* hdr =
        BytesAt(off, kRecordHeaderSize, header_scratch_);
    const std::uint32_t type = ReadU32At(hdr);
    const std::uint64_t payload_size = ReadU64At(hdr + 4);
    if (payload_size > size_ - (off + kRecordHeaderSize)) {
      throw StoreError(path_ + ": record " + std::to_string(r) +
                       ": payload of " + std::to_string(payload_size) +
                       " bytes runs past end of file (truncated store)");
    }
    fn(type, off, payload_size);
    off += kRecordHeaderSize + payload_size;
  }
  if (off != size_) {
    throw StoreError(path_ + ": " + std::to_string(size_ - off) +
                     " trailing bytes after the last record");
  }
}

RecordView DatasetReader::ReadRecordAt(std::uint64_t offset) const {
  if (offset + kRecordHeaderSize > size_) {
    throw StoreError(path_ + ": record offset " + std::to_string(offset) +
                     " runs past end of file");
  }
  const unsigned char* hdr =
      BytesAt(offset, kRecordHeaderSize, header_scratch_);
  RecordView view;
  view.type = ReadU32At(hdr);
  view.offset = offset;
  const std::uint64_t payload_size = ReadU64At(hdr + 4);
  const std::uint64_t checksum = ReadU64At(hdr + 12);
  if (payload_size > size_ - (offset + kRecordHeaderSize)) {
    throw StoreError(path_ + ": record at byte " + std::to_string(offset) +
                     ": payload of " + std::to_string(payload_size) +
                     " bytes runs past end of file (truncated store)");
  }
  view.context = path_ + ": record at byte " + std::to_string(offset);
  const unsigned char* payload =
      BytesAt(offset + kRecordHeaderSize,
              static_cast<std::size_t>(payload_size), scratch_);
  if (Fnv1a64(payload, payload_size) != checksum) {
    throw StoreError(view.context + " (type " + std::to_string(view.type) +
                     "): checksum mismatch — corrupted store");
  }
  view.payload = std::span<const unsigned char>(
      payload, static_cast<std::size_t>(payload_size));
  return view;
}

StoreContents DatasetReader::ReadAll() const {
  StoreContents out;
  GraphDict dict;
  ForEachRecord([&](const RecordView& view) {
    DecodeRecordInto(out, view, version_, dict);
  });
  return out;
}

// ---- Sharded stores --------------------------------------------------------

StoreManifest ReadStoreManifest(const DatasetReader& reader) {
  if (!reader.sharded_manifest()) {
    throw StoreError(reader.path() +
                     ": not a sharded-store manifest (expected a single "
                     "manifest record)");
  }
  StoreManifest manifest;
  reader.ForEachRecord([&manifest](const RecordView& view) {
    Dec d(view.payload.data(), view.payload.size(), view.context);
    const std::uint32_t n = d.U32();
    // Str(>=4) + records(8) + bytes(8) + fnv(8) per part.
    d.RequireCount(n, 28, "manifest part");
    for (std::uint32_t i = 0; i < n; ++i) {
      StorePartInfo part;
      part.file = d.Str();
      part.records = d.U64();
      part.bytes = d.U64();
      part.records_fnv = d.U64();
      if (part.file.empty() || part.file.find('/') != std::string::npos) {
        d.Fail("manifest part name \"" + part.file +
               "\" is not a plain sibling file name");
      }
      manifest.parts.push_back(std::move(part));
    }
    if (!d.AtEnd()) d.Fail("trailing bytes inside record payload");
  });
  return manifest;
}

std::string StorePartPath(const std::string& manifest_path,
                          const std::string& part_file) {
  return (std::filesystem::path(manifest_path).parent_path() / part_file)
      .string();
}

StoreContents ReadStoreContents(const std::string& path, ReadMode mode) {
  DatasetReader reader(path, mode);
  if (!reader.sharded_manifest()) return reader.ReadAll();
  const StoreManifest manifest = ReadStoreManifest(reader);
  StoreContents out;
  for (const StorePartInfo& info : manifest.parts) {
    const std::string part_path = StorePartPath(path, info.file);
    std::error_code ec;
    if (!std::filesystem::exists(part_path, ec) || ec) {
      throw StoreError(path + ": part file " + info.file +
                       " listed in the manifest is missing — the sharded "
                       "store is incomplete; delete the manifest and rebuild");
    }
    const auto actual_bytes = std::filesystem::file_size(part_path, ec);
    if (!ec && actual_bytes != info.bytes) {
      throw StoreError(part_path + ": manifest lists " +
                       std::to_string(info.bytes) + " bytes but the part is " +
                       std::to_string(actual_bytes) +
                       " — truncated or swapped part file");
    }
    DatasetReader part(part_path, mode);
    if (part.record_count() != info.records) {
      throw StoreError(part_path + ": manifest lists " +
                       std::to_string(info.records) +
                       " records but the part holds " +
                       std::to_string(part.record_count()));
    }
    GraphDict dict;
    std::uint64_t region_fnv = kFnv1a64Seed;
    part.ForEachRecord([&](const RecordView& view) {
      // Re-derive the framing header bytes (deterministic encoding) so the
      // manifest's records-region checksum can be verified without a second
      // pass over the raw file.
      Enc hdr;
      hdr.U32(view.type);
      hdr.U64(view.payload.size());
      hdr.U64(Fnv1a64(view.payload.data(), view.payload.size()));
      region_fnv = Fnv1a64Continue(region_fnv, hdr.bytes().data(),
                                   hdr.bytes().size());
      region_fnv =
          Fnv1a64Continue(region_fnv, view.payload.data(),
                          view.payload.size());
      DecodeRecordInto(out, view, part.format_version(), dict);
    });
    if (region_fnv != info.records_fnv) {
      throw StoreError(part_path +
                       ": records-region checksum does not match the "
                       "manifest — corrupted or swapped part file");
    }
  }
  return out;
}

// ---- Cache-directory layer -------------------------------------------------

std::uint64_t DatasetCacheKey(std::string_view task, std::string_view target,
                              std::span<const ir::Program> corpus,
                              const DatasetOptions& options) {
  std::uint64_t key = sim::HashCombine(HashString(task), HashString(target));
  key = sim::HashCombine(key, corpus.size());
  for (const ir::Program& p : corpus) {
    key = sim::HashCombine(key, HashString(p.name), HashString(p.family),
                           p.graph.Fingerprint());
  }
  key = sim::HashCombine(
      key, static_cast<std::uint64_t>(options.max_tile_configs_per_kernel),
      static_cast<std::uint64_t>(options.max_enumerated_tiles),
      static_cast<std::uint64_t>(options.fusion_configs_per_program),
      options.seed);
  // The generating CorpusOptions: tier extension grows a corpus in place, so
  // two scales sharing a program-list prefix must not alias to one store.
  key = sim::HashCombine(key, std::bit_cast<std::uint64_t>(options.corpus_scale),
                         options.corpus_seed);
  return sim::HashCombine(key, FeatureConfigHash(),
                          static_cast<std::uint64_t>(kStoreFormatVersion));
}

std::string StorePath(const std::string& dir, std::string_view task,
                      std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(key));
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += task;
  path += '_';
  path += buf;
  path += ".tpds";
  return path;
}

TileDataset LoadOrBuildTileDataset(const std::string& cache_dir,
                                   std::span<const ir::Program> corpus,
                                   const sim::TpuSimulator& simulator,
                                   const DatasetOptions& options,
                                   std::shared_ptr<StoredFeatures>* features,
                                   StoreLoadStats* stats) {
  const auto start = Clock::now();
  if (features != nullptr) features->reset();
  if (cache_dir.empty()) {
    TileDataset dataset = BuildTileDataset(corpus, simulator, options);
    FillStats(stats, false, "", start);
    return dataset;
  }
  const std::uint64_t key =
      DatasetCacheKey("tile", simulator.target().name, corpus, options);
  const std::string path = StorePath(cache_dir, "tile", key);
  if (std::filesystem::exists(path)) {
    StoreContents contents = ReadStoreContents(path);
    VerifyPrograms(contents, corpus, path);
    if (features != nullptr) *features = contents.features;
    FillStats(stats, true, path, start);
    return std::move(contents.tile);
  }
  TileDataset dataset = BuildTileDataset(corpus, simulator, options);
  std::vector<const KernelRecord*> records;
  records.reserve(dataset.kernels.size());
  for (const TileKernelData& k : dataset.kernels) records.push_back(&k.record);
  auto stored = FeaturizeUnique(records);
  std::filesystem::create_directories(cache_dir);
  DatasetWriter writer(path, options.store_part_bytes);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    writer.Add(ProgramInfo{static_cast<int>(i), corpus[i].name,
                           corpus[i].family});
  }
  for (const TileKernelData& k : dataset.kernels) writer.Add(k);
  for (const FeaturizedKernel& fk : stored->entries()) writer.Add(fk);
  writer.Finish();
  if (features != nullptr) *features = std::move(stored);
  FillStats(stats, false, path, start);
  return dataset;
}

FusionDataset LoadOrBuildFusionDataset(
    const std::string& cache_dir, std::span<const ir::Program> corpus,
    const sim::TpuSimulator& simulator,
    const analytical::AnalyticalModel& analytical,
    const DatasetOptions& options,
    std::shared_ptr<StoredFeatures>* features, StoreLoadStats* stats) {
  const auto start = Clock::now();
  if (features != nullptr) features->reset();
  if (cache_dir.empty()) {
    FusionDataset dataset =
        BuildFusionDataset(corpus, simulator, analytical, options);
    FillStats(stats, false, "", start);
    return dataset;
  }
  const std::uint64_t key =
      DatasetCacheKey("fusion", simulator.target().name, corpus, options);
  const std::string path = StorePath(cache_dir, "fusion", key);
  if (std::filesystem::exists(path)) {
    StoreContents contents = ReadStoreContents(path);
    VerifyPrograms(contents, corpus, path);
    if (features != nullptr) *features = contents.features;
    FillStats(stats, true, path, start);
    return std::move(contents.fusion);
  }
  FusionDataset dataset =
      BuildFusionDataset(corpus, simulator, analytical, options);
  std::vector<const KernelRecord*> records;
  records.reserve(dataset.samples.size());
  for (const FusionSample& s : dataset.samples) records.push_back(&s.record);
  auto stored = FeaturizeUnique(records);
  std::filesystem::create_directories(cache_dir);
  DatasetWriter writer(path, options.store_part_bytes);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    writer.Add(ProgramInfo{static_cast<int>(i), corpus[i].name,
                           corpus[i].family});
  }
  for (const FusionSample& s : dataset.samples) writer.Add(s);
  for (const FeaturizedKernel& fk : stored->entries()) writer.Add(fk);
  writer.Finish();
  if (features != nullptr) *features = std::move(stored);
  FillStats(stats, false, path, start);
  return dataset;
}

}  // namespace tpuperf::data
