/// \file
/// Out-of-core dataset streaming (ISSUE 9 tentpole).
///
/// The paper's datasets (25M tile / 208M fusion samples, §4) never fit in
/// one host's memory; production training streams shuffled shards instead.
/// StreamingSampler reproduces that shape over the sharded dataset stores
/// of dataset/store.h: it scans the part files once at construction
/// (recording byte offsets, never materializing payloads), then serves
/// shuffle windows — contiguous chunks of the record stream decoded on
/// demand with a one-window prefetch on core::ThreadPool — so training
/// memory is O(window), not O(corpus).
///
/// ## Determinism contract
///
/// The ORDER of windows within an epoch is shuffled with a hand-rolled
/// Fisher-Yates keyed only by (seed, epoch) — never std::shuffle, whose
/// output is implementation-defined. Record order INSIDE a window stays
/// canonical (store order). Construction of every window is a pure
/// function of the store bytes and those two integers, so the sequence of
/// windows is bit-identical at any thread-pool width, and with a single
/// window (window_records = 0 or >= the corpus) the stream degenerates to
/// the canonical in-memory order — the streaming trainers then draw
/// exactly the RNG sequence of the in-memory trainers and reproduce their
/// losses bit for bit (tests/streaming_test.cpp holds this with EXPECT_EQ).
///
/// ## Memory contract
///
/// Windows are decoded through stream-mode readers (pread, reused scratch
/// buffer) rather than mmap, so resident memory stays O(window + largest
/// record). StreamedFeatures lazily decodes featurized records on Lookup
/// and caches only the kernels actually touched — O(touched kernels), not
/// O(corpus).
#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dataset/store.h"
#include "features/featurizer.h"

namespace tpuperf::data {

enum class StreamTask { kTile, kFusion };

struct StreamingOptions {
  // Records per shuffle window. 0 (or anything >= the task's record count)
  // means one window holding the whole stream in canonical order.
  std::size_t window_records = 0;
  // Keys the per-epoch window shuffle (with the epoch number).
  std::uint64_t seed = 0;
  // Prefetch the next window on core::ThreadPool::Global() while the
  // caller trains on the current one.
  bool prefetch = true;
};

/// One decoded shuffle window. Exactly one of `tile` / `fusion` is
/// populated, matching the sampler's task.
struct StreamWindow {
  std::vector<TileKernelData> tile;
  std::vector<FusionSample> fusion;
  std::size_t begin = 0;  // record range [begin, end) in stream order
  std::size_t end = 0;
  std::size_t window_index = 0;  // canonical window number
  std::uint64_t epoch = 0;

  std::size_t size() const noexcept { return end - begin; }
};

/// Lazy feat::KernelFeatureSource over the featurized records of a store:
/// the sampler indexes (fingerprint, signature) -> (part, offset) during
/// its scan; Lookup preads and decodes a record on first use and caches
/// the result (stable addresses, mutex-protected — safe for concurrent
/// Lookup from pool workers). Warm streaming runs therefore keep
/// feat::FeaturizeKernelInvocations() at zero without ever holding the
/// full featurized corpus in memory.
class StreamedFeatures final : public feat::KernelFeatureSource {
 public:
  const feat::KernelFeatures* Lookup(
      std::uint64_t fingerprint, std::uint64_t structural_sig) const override;

  // Featurized records indexed across all parts.
  std::size_t indexed() const noexcept { return indexed_; }
  // Records decoded and cached so far (the O(touched) working set).
  std::size_t loaded() const;

 private:
  friend class StreamingSampler;

  struct Loc {
    std::uint64_t structural_sig = 0;
    std::uint32_t part = 0;
    std::uint64_t offset = 0;
  };

  std::vector<std::string> part_paths_;
  std::unordered_map<std::uint64_t, std::vector<Loc>> index_;
  std::size_t indexed_ = 0;

  mutable std::mutex mu_;
  mutable std::deque<FeaturizedKernel> loaded_;  // stable addresses
  mutable std::map<std::pair<std::uint64_t, std::uint64_t>,
                   const feat::KernelFeatures*>
      cache_;
  mutable std::vector<std::unique_ptr<DatasetReader>> readers_;  // per part
};

/// Prefetching shuffle-window iterator over a dataset store (sharded or
/// single-file). Construction scans every part once in stream mode —
/// validating framing and the checksums of the records it indexes — and
/// builds the record/dictionary/featurized offset indexes; Next() then
/// serves windows per the determinism contract above. Not thread-safe
/// itself (one trainer drives it); the features() source is.
class StreamingSampler {
 public:
  StreamingSampler(std::string store_path, StreamTask task,
                   StreamingOptions options = {});
  ~StreamingSampler();
  StreamingSampler(const StreamingSampler&) = delete;
  StreamingSampler& operator=(const StreamingSampler&) = delete;

  StreamTask task() const noexcept { return task_; }
  // Task records (tile kernels or fusion samples) across all parts.
  std::size_t total_records() const noexcept { return records_.size(); }
  std::size_t part_count() const noexcept { return parts_.size(); }
  std::size_t window_records() const noexcept { return window_records_; }
  std::size_t windows_per_epoch() const noexcept { return windows_; }
  std::uint64_t epoch() const noexcept { return epoch_; }
  double scan_seconds() const noexcept { return scan_seconds_; }

  // The next window in the deterministic per-epoch shuffled order,
  // prefetching its successor before returning.
  StreamWindow Next();

  // Synchronous canonical accessor: window w in store order, no shuffle,
  // no prefetch. The streaming trainers' scaler pre-pass walks these so
  // scaler statistics match the in-memory fit exactly.
  StreamWindow Window(std::size_t w) const;

  // Lazy feature source over the store's featurized records; register it
  // with feat::SetGlobalKernelFeatureSource for warm streaming training.
  std::shared_ptr<StreamedFeatures> features() const noexcept {
    return features_;
  }

 private:
  struct PartIndex {
    std::string path;
    std::uint32_t version = 0;
    std::vector<std::uint64_t> dict_offsets;  // dictionary records, in order
  };

  StreamWindow LoadWindow(std::size_t w, std::uint64_t epoch) const;
  // The part's graph dictionary, decoded on demand and cached for a few
  // parts (windows touch parts in runs, so eviction is rare).
  std::shared_ptr<const GraphDict> DictFor(std::uint32_t part) const;
  void ReshuffleOrder();
  void LaunchPrefetch();

  StreamTask task_;
  StreamingOptions options_;
  std::vector<PartIndex> parts_;
  // (part, record offset) of every task record, in stream order.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> records_;
  std::size_t window_records_ = 0;
  std::size_t windows_ = 0;
  double scan_seconds_ = 0;
  std::shared_ptr<StreamedFeatures> features_;

  mutable std::mutex dict_mu_;
  mutable std::deque<std::pair<std::uint32_t,
                               std::shared_ptr<const GraphDict>>>
      dict_cache_;

  std::uint64_t epoch_ = 0;
  std::size_t next_in_epoch_ = 0;
  std::vector<std::uint32_t> order_;  // window order for epoch_
  std::future<StreamWindow> prefetched_;
  bool prefetch_valid_ = false;
};

}  // namespace tpuperf::data
