#include "dataset/fusion.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "sim/hash.h"

namespace tpuperf::data {
namespace {

using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::OpCode;

bool IsInlinedInput(OpCode op) {
  return op == OpCode::kParameter || op == OpCode::kConstant ||
         op == OpCode::kIota;
}

// Union-find over node ids.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(static_cast<size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }
  void Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[static_cast<size_t>(a)] = b;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

EdgeList EdgeList::FromGraph(const Graph& graph) {
  EdgeList list;
  for (const Node& n : graph.nodes()) {
    for (const NodeId operand : n.operands) {
      if (IsInlinedInput(graph.node(operand).op)) continue;
      list.edges.push_back(Edge{operand, n.id});
    }
  }
  return list;
}

std::uint64_t FusionConfig::Fingerprint() const {
  std::uint64_t h = 0xfeedc0ffee123457ull;
  for (size_t i = 0; i < fuse_edge.size(); ++i) {
    if (fuse_edge[i]) h = sim::HashCombine(h, static_cast<std::uint64_t>(i));
  }
  return h;
}

std::optional<std::vector<int>> DerivePartition(const Graph& graph,
                                                const EdgeList& edges,
                                                const FusionConfig& config,
                                                const FusionLimits& limits) {
  if (config.fuse_edge.size() != edges.edges.size()) {
    throw std::invalid_argument("DerivePartition: config/edge size mismatch");
  }
  const int n = graph.num_nodes();
  UnionFind uf(n);
  for (size_t e = 0; e < edges.edges.size(); ++e) {
    if (config.fuse_edge[e]) {
      uf.Union(edges.edges[e].producer, edges.edges[e].consumer);
    }
  }

  // Compact group ids.
  std::vector<int> group_of(static_cast<size_t>(n), -1);
  std::map<int, int> remap;
  for (int i = 0; i < n; ++i) {
    const int root = uf.Find(i);
    auto [it, inserted] = remap.try_emplace(root, static_cast<int>(remap.size()));
    group_of[static_cast<size_t>(i)] = it->second;
  }
  const int num_groups = static_cast<int>(remap.size());

  // Group size bound (computation nodes only).
  std::vector<int> group_size(static_cast<size_t>(num_groups), 0);
  for (const Node& node : graph.nodes()) {
    if (IsInlinedInput(node.op)) continue;
    if (++group_size[static_cast<size_t>(
            group_of[static_cast<size_t>(node.id)])] >
        limits.max_group_nodes) {
      return std::nullopt;
    }
  }

  // Acyclicity of the condensed group graph (Kahn's algorithm).
  std::vector<std::vector<int>> succ(static_cast<size_t>(num_groups));
  std::vector<int> indegree(static_cast<size_t>(num_groups), 0);
  for (const Node& node : graph.nodes()) {
    const int g_to = group_of[static_cast<size_t>(node.id)];
    for (const NodeId operand : node.operands) {
      const int g_from = group_of[static_cast<size_t>(operand)];
      if (g_from == g_to) continue;
      succ[static_cast<size_t>(g_from)].push_back(g_to);
      ++indegree[static_cast<size_t>(g_to)];
    }
  }
  std::queue<int> ready;
  for (int g = 0; g < num_groups; ++g) {
    if (indegree[static_cast<size_t>(g)] == 0) ready.push(g);
  }
  int visited = 0;
  while (!ready.empty()) {
    const int g = ready.front();
    ready.pop();
    ++visited;
    for (const int s : succ[static_cast<size_t>(g)]) {
      if (--indegree[static_cast<size_t>(s)] == 0) ready.push(s);
    }
  }
  if (visited != num_groups) return std::nullopt;  // cycle
  return group_of;
}

std::vector<ir::Kernel> ExtractKernels(const Graph& graph,
                                       const std::vector<int>& group_of) {
  const int num_groups =
      group_of.empty() ? 0
                       : 1 + *std::max_element(group_of.begin(), group_of.end());

  // Which nodes' values cross group boundaries or leave the program?
  std::vector<bool> crosses(static_cast<size_t>(graph.num_nodes()), false);
  {
    std::vector<bool> has_user(static_cast<size_t>(graph.num_nodes()), false);
    for (const Node& node : graph.nodes()) {
      for (const NodeId operand : node.operands) {
        has_user[static_cast<size_t>(operand)] = true;
        if (group_of[static_cast<size_t>(operand)] !=
            group_of[static_cast<size_t>(node.id)]) {
          crosses[static_cast<size_t>(operand)] = true;
        }
      }
    }
    for (const Node& node : graph.nodes()) {
      if (!has_user[static_cast<size_t>(node.id)] || node.is_output) {
        crosses[static_cast<size_t>(node.id)] = true;  // program output
      }
    }
  }

  std::vector<ir::Kernel> kernels;
  for (int g = 0; g < num_groups; ++g) {
    // Nodes of this group in id (= topological) order.
    std::vector<NodeId> members;
    bool any_compute = false;
    for (const Node& node : graph.nodes()) {
      if (group_of[static_cast<size_t>(node.id)] != g) continue;
      members.push_back(node.id);
      if (!IsInlinedInput(node.op)) any_compute = true;
    }
    if (!any_compute) continue;  // inlined-inputs-only group: no kernel

    Graph kgraph;
    std::map<NodeId, NodeId> local_id;  // program node -> kernel node

    // Maps a producer value from outside the group into this kernel as a
    // parameter node.
    const auto import_value = [&](NodeId program_id) -> NodeId {
      const auto it = local_id.find(program_id);
      if (it != local_id.end()) return it->second;
      Node param;
      param.op = OpCode::kParameter;
      param.shape = graph.node(program_id).shape;
      const NodeId local = kgraph.AddNode(std::move(param));
      local_id.emplace(program_id, local);
      return local;
    };

    for (const NodeId id : members) {
      const Node& node = graph.node(id);
      if (IsInlinedInput(node.op)) {
        // Materialized lazily by import_value when used.
        continue;
      }
      Node copy = node;
      copy.operands.clear();
      for (const NodeId operand : node.operands) {
        const Node& producer = graph.node(operand);
        if (group_of[static_cast<size_t>(operand)] == g &&
            !IsInlinedInput(producer.op)) {
          copy.operands.push_back(local_id.at(operand));
        } else if (IsInlinedInput(producer.op)) {
          // Inlined inputs keep their original opcode so the featurizer
          // sees parameter vs constant distinctions.
          const auto it = local_id.find(operand);
          if (it != local_id.end()) {
            copy.operands.push_back(it->second);
          } else {
            Node inlined;
            inlined.op = producer.op == OpCode::kIota ? OpCode::kIota
                                                      : producer.op;
            inlined.shape = producer.shape;
            const NodeId local = kgraph.AddNode(std::move(inlined));
            local_id.emplace(operand, local);
            copy.operands.push_back(local);
          }
        } else {
          copy.operands.push_back(import_value(operand));
        }
      }
      copy.is_output = crosses[static_cast<size_t>(id)];
      const NodeId local = kgraph.AddNode(std::move(copy));
      local_id.emplace(id, local);
    }

    ir::Kernel kernel;
    kernel.kind = ir::Kernel::Classify(kgraph);
    kernel.graph = std::move(kgraph);
    kernels.push_back(std::move(kernel));
  }
  return kernels;
}

std::vector<ir::Kernel> ApplyFusion(const Graph& graph, const EdgeList& edges,
                                    const FusionConfig& config,
                                    const FusionLimits& limits) {
  const auto partition = DerivePartition(graph, edges, config, limits);
  if (!partition.has_value()) {
    throw std::invalid_argument("ApplyFusion: invalid fusion configuration");
  }
  return ExtractKernels(graph, *partition);
}

FusionConfig DefaultFusion(const Graph& graph, const EdgeList& edges,
                           const FusionLimits& limits) {
  FusionConfig config;
  config.fuse_edge.assign(edges.edges.size(), false);

  // Single-consumer producers can fuse without duplication.
  std::vector<int> user_count(static_cast<size_t>(graph.num_nodes()), 0);
  for (const Node& node : graph.nodes()) {
    for (const NodeId operand : node.operands) {
      ++user_count[static_cast<size_t>(operand)];
    }
  }

  for (size_t e = 0; e < edges.edges.size(); ++e) {
    const auto& edge = edges.edges[e];
    const Node& producer = graph.node(edge.producer);
    const Node& consumer = graph.node(edge.consumer);
    const bool producer_cheap = ir::IsElementwise(producer.op) ||
                                ir::IsDataMovement(producer.op) ||
                                producer.op == OpCode::kReduce ||
                                producer.op == OpCode::kBatchNormInference;
    const bool epilogue_fusion =
        ir::UsesMatrixUnit(producer.op) &&
        (ir::IsElementwise(consumer.op) ||
         consumer.op == OpCode::kBatchNormInference ||
         consumer.op == OpCode::kReduce);
    const bool single_user = user_count[static_cast<size_t>(edge.producer)] == 1;
    if (!single_user) continue;
    if (!producer_cheap && !epilogue_fusion) continue;

    config.fuse_edge[e] = true;
    if (!DerivePartition(graph, edges, config, limits).has_value()) {
      config.fuse_edge[e] = false;  // would create a cycle or oversize group
    }
  }
  return config;
}

FusionConfig RandomFusion(const Graph& graph, const EdgeList& edges,
                          std::mt19937_64& rng, double fuse_prob,
                          const FusionLimits& limits) {
  FusionConfig config;
  config.fuse_edge.assign(edges.edges.size(), false);
  std::bernoulli_distribution fuse(fuse_prob);
  for (size_t e = 0; e < edges.edges.size(); ++e) {
    config.fuse_edge[e] = fuse(rng);
  }
  // Repair: unfuse random fused edges until the configuration is valid.
  std::vector<size_t> fused;
  for (size_t e = 0; e < edges.edges.size(); ++e) {
    if (config.fuse_edge[e]) fused.push_back(e);
  }
  std::shuffle(fused.begin(), fused.end(), rng);
  while (!DerivePartition(graph, edges, config, limits).has_value()) {
    if (fused.empty()) break;  // all-unfused is always valid
    config.fuse_edge[fused.back()] = false;
    fused.pop_back();
  }
  return config;
}

std::optional<FusionConfig> FlipOneEdge(const Graph& graph,
                                        const EdgeList& edges,
                                        const FusionConfig& config,
                                        std::mt19937_64& rng,
                                        const FusionLimits& limits) {
  if (edges.edges.empty()) return std::nullopt;
  FusionConfig next = config;
  std::uniform_int_distribution<size_t> pick(0, edges.edges.size() - 1);
  const size_t e = pick(rng);
  next.fuse_edge[e] = !next.fuse_edge[e];
  if (!DerivePartition(graph, edges, next, limits).has_value()) {
    return std::nullopt;
  }
  return next;
}

}  // namespace tpuperf::data
