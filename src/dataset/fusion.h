// Operator fusion: configurations, validity, extraction, and the compiler's
// default heuristic (paper §2.2, §2.3).
//
// Before fusion, a program graph's nodes are primitive tensor operations.
// A fusion configuration decides, for every dataflow edge between
// computation nodes, whether producer and consumer execute in the same
// kernel. Contracting the fused edges partitions the graph into kernels;
// a configuration is valid when the resulting kernel-level graph is acyclic
// (otherwise no execution order exists) and no kernel exceeds the group
// size bound. The autotuner searches this space (up to 2^40000
// configurations per program in the paper).
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "ir/graph.h"
#include "ir/program.h"

namespace tpuperf::data {

// Canonical indexing of the fusible edges of a graph. Edges from
// parameter/constant/iota producers are excluded: pure inputs are always
// inlined into their consumer kernel and carry no fusion decision.
struct EdgeList {
  struct Edge {
    ir::NodeId producer = ir::kInvalidNode;
    ir::NodeId consumer = ir::kInvalidNode;
  };
  std::vector<Edge> edges;

  static EdgeList FromGraph(const ir::Graph& graph);
  int size() const noexcept { return static_cast<int>(edges.size()); }
};

// One fusion decision per EdgeList edge.
struct FusionConfig {
  std::vector<bool> fuse_edge;

  std::uint64_t Fingerprint() const;
};

struct FusionLimits {
  // Maximum computation nodes per fused kernel (mirrors XLA's fusion node
  // limits; also keeps simulated kernels within the size range of §4).
  int max_group_nodes = 48;
};

// Derives the node -> group id partition induced by `config`. Returns
// nullopt when the contracted group graph is cyclic or a group exceeds
// `limits.max_group_nodes`.
std::optional<std::vector<int>> DerivePartition(const ir::Graph& graph,
                                                const EdgeList& edges,
                                                const FusionConfig& config,
                                                const FusionLimits& limits = {});

// Materializes kernels from a partition. Cross-group values become
// parameters of the consumer kernel and outputs of the producer kernel;
// parameter/constant nodes are inlined (duplicated) into every consuming
// kernel. Groups containing only inlined inputs produce no kernel.
std::vector<ir::Kernel> ExtractKernels(const ir::Graph& graph,
                                       const std::vector<int>& group_of);

// Convenience: partition + extraction; throws std::invalid_argument on an
// invalid configuration.
std::vector<ir::Kernel> ApplyFusion(const ir::Graph& graph,
                                    const EdgeList& edges,
                                    const FusionConfig& config,
                                    const FusionLimits& limits = {});

// The compiler's default fusion heuristic (§2.3): greedily fuse
// producer->consumer edges that save memory traffic — elementwise /
// data-movement / reduction producers with a single consumer, and
// dot/convolution outputs into elementwise epilogues — as long as the
// configuration stays valid.
FusionConfig DefaultFusion(const ir::Graph& graph, const EdgeList& edges,
                           const FusionLimits& limits = {});

// A random valid configuration: iid Bernoulli(fuse_prob) decisions,
// repaired by unfusing until valid. Used by the random-search dataset
// generation of §4.
FusionConfig RandomFusion(const ir::Graph& graph, const EdgeList& edges,
                          std::mt19937_64& rng, double fuse_prob,
                          const FusionLimits& limits = {});

// Simulated-annealing neighbourhood move: flip one random edge decision.
// Returns nullopt if the flipped configuration is invalid.
std::optional<FusionConfig> FlipOneEdge(const ir::Graph& graph,
                                        const EdgeList& edges,
                                        const FusionConfig& config,
                                        std::mt19937_64& rng,
                                        const FusionLimits& limits = {});

}  // namespace tpuperf::data
