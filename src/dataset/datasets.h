// Dataset construction for the two tasks (paper §4).
//
// Tile-size dataset: compile each program with the default fusion
// heuristic, decompose into kernels, enumerate valid tile sizes per kernel,
// and measure each (minimum of three runs) on the simulated TPU.
//
// Fusion dataset: run random fusion configurations per program, decompose
// into kernels, measure each kernel under its compiler-chosen (analytical
// best) tile, and deduplicate kernels by structural fingerprint.
//
// Counts are scaled to laptop size (the paper used 25M/208M samples across
// 50 accelerator hosts); REPRO_SCALE multiplies the per-kernel /
// per-program budgets.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analytical/analytical_model.h"
#include "dataset/fusion.h"
#include "ir/program.h"
#include "ir/tile.h"
#include "sim/simulator.h"

namespace tpuperf::data {

// Split of program indices into train/validation/test.
struct SplitSpec {
  std::vector<int> train;
  std::vector<int> validation;
  std::vector<int> test;
};

// Stratified random split (paper §4 "random split method"): the test set
// holds one variant from each of the eight application families reported in
// Table 2 (ConvDraw, WaveRNN, NMT, SSD, RNN, ResNet v1/v2, Translate);
// validation gets one program from eight other families; everything else
// trains.
SplitSpec RandomSplit(std::span<const ir::Program> corpus, std::uint64_t seed);

// Manual split (paper §4): entire families chosen for dissimilarity are
// held out — Ranking, Feats2Wave, ImageEmbed, SmartCompose and WaveRNN —
// matching Table 8's six test applications.
SplitSpec ManualSplit(std::span<const ir::Program> corpus);

struct KernelRecord {
  ir::Kernel kernel;
  std::uint64_t fingerprint = 0;
  int program_id = -1;
  std::string family;
};

// One kernel of the tile-size dataset with its measured tile configs.
struct TileKernelData {
  KernelRecord record;
  std::vector<ir::TileConfig> configs;
  std::vector<double> runtimes;  // seconds, min-of-3 measurements
};

struct TileDataset {
  std::vector<TileKernelData> kernels;

  std::size_t TotalSamples() const;
  // Indices of kernels belonging to the given programs.
  std::vector<int> KernelsOfPrograms(std::span<const int> program_ids) const;
};

// One (deduplicated) kernel of the fusion dataset.
struct FusionSample {
  KernelRecord record;
  ir::TileConfig tile;   // compiler-chosen tile
  double runtime = 0;    // seconds
  bool from_default_config = false;  // part of the calibration set (§5.2)
};

struct FusionDataset {
  std::vector<FusionSample> samples;

  std::vector<int> SamplesOfPrograms(std::span<const int> program_ids) const;
};

struct DatasetOptions {
  // Max measured tile configs per kernel (the paper measured "as many as
  // possible within 30 minutes across 50 hosts").
  int max_tile_configs_per_kernel = 48;
  // Candidate pool size the tile enumerator may return per kernel.
  int max_enumerated_tiles = 512;
  // Random fusion configurations sampled per program (paper: 50,000).
  int fusion_configs_per_program = 12;
  std::uint64_t seed = 0x5EEDull;

  // The CorpusOptions that generated the corpus these datasets are built
  // from. Two corpora can share a program prefix (tier extension grows the
  // corpus in place), so the dataset-store cache key MUST fold these in —
  // hashing only the program list would let a scaled-up corpus alias a
  // stale store written at a smaller scale with a colliding prefix.
  double corpus_scale = 1.0;
  std::uint64_t corpus_seed = 0;

  // When > 0, dataset stores written for these options are sharded into
  // part files of roughly this many bytes behind a manifest (see
  // dataset/store.h). Purely a storage layout knob: it does NOT enter the
  // cache key, because the logical dataset is identical either way.
  std::uint64_t store_part_bytes = 0;

  // Multiplies the budgets above; wired to the REPRO_SCALE env var in
  // benches.
  void ApplyScale(double scale);
};

TileDataset BuildTileDataset(std::span<const ir::Program> corpus,
                             const sim::TpuSimulator& simulator,
                             const DatasetOptions& options);

FusionDataset BuildFusionDataset(std::span<const ir::Program> corpus,
                                 const sim::TpuSimulator& simulator,
                                 const analytical::AnalyticalModel& analytical,
                                 const DatasetOptions& options);

// The compiler-chosen tile for a kernel: analytical-model best among the
// enumerated candidates (what XLA does by default, §2.3).
ir::TileConfig CompilerDefaultTile(const ir::Graph& kernel,
                                   const sim::TpuSimulator& simulator,
                                   const analytical::AnalyticalModel& analytical,
                                   int max_enumerated_tiles = 256);

}  // namespace tpuperf::data
