// Fusion autotuning scenario (paper §7.3): when TPU access is scarce, drive
// simulated annealing with the learned cost model on CPU and spend only a
// minute of hardware time validating the most promising fusion
// configurations — versus annealing directly on the hardware for ten
// minutes.
//
//   $ ./build/examples/fusion_search
#include <cstdio>

#include "autotuner/fusion_tuner.h"
#include "dataset/families.h"

using namespace tpuperf;

int main() {
  const sim::TpuSimulator tpu(sim::TpuTarget::V2());
  analytical::AnalyticalModel analytical(tpu.target());

  // Train the fusion cost model on NMT variants; tune a different variant.
  std::vector<ir::Program> corpus;
  for (int v = 0; v < 3; ++v) corpus.push_back(data::BuildProgram("NMT", v));
  corpus.push_back(data::BuildProgram("TranslateLike", 0));
  data::DatasetOptions options;
  options.fusion_configs_per_program = 8;
  const auto dataset =
      data::BuildFusionDataset(corpus, tpu, analytical, options);
  std::printf("fusion dataset: %zu unique kernels\n", dataset.samples.size());

  core::ModelConfig config = core::ModelConfig::FusionTaskDefault();
  config.train_steps = 1500;
  core::LearnedCostModel model(config);
  core::PreparedCache cache(model);
  const std::vector<int> train_ids = {0, 1, 2, 3};
  const auto stats = core::TrainFusionTask(model, dataset, train_ids, cache);
  std::printf("fusion model trained in %.1fs\n\n", stats.wall_seconds);

  const ir::Program target = data::BuildProgram("NMT", 5);
  tune::FusionAutotuner tuner(tpu, analytical);

  tune::FusionTuneOptions opts;
  opts.max_steps = 250;
  opts.seed = 7;

  // Hardware-only annealing, 10 simulated minutes.
  opts.hardware_budget_sec = 600;
  const auto hw = tuner.TuneWithHardware(target, opts);

  // Learned-model annealing + 1 simulated minute of validation.
  tune::LearnedEvaluator learned(model, cache);
  opts.hardware_budget_sec = 60;
  const auto guided = tuner.TuneWithModel(target, learned, opts);

  std::printf("tuning %s (default runtime %.1f us)\n", target.name.c_str(),
              hw.default_runtime_sec * 1e6);
  std::printf("  %-30s %8s %13s %10s\n", "strategy", "speedup", "hardware-sec",
              "configs");
  std::printf("  %-30s %7.3fx %13.0f %10d\n", "anneal on hardware (10 min)",
              hw.Speedup(), hw.hardware_seconds, hw.configs_explored);
  std::printf("  %-30s %7.3fx %13.0f %10d\n",
              "learned model + hardware (1 min)", guided.Speedup(),
              guided.hardware_seconds, guided.configs_explored);
  std::printf(
      "\nThe learned model lets the autotuner reach comparable speedups with "
      "~10x less\nhardware time (paper Fig. 5).\n");
  return 0;
}
