// Tile-size autotuning scenario (paper §7.1-7.2): train the learned cost
// model on a slice of the corpus, then tune an unseen ResNet variant three
// ways — exhaustive hardware search, learned-model-in-compiler (top-1), and
// learned top-10 + hardware verification — and compare speedups and
// hardware cost.
//
//   $ ./build/examples/tile_size_tuning
#include <cstdio>

#include "autotuner/tile_tuner.h"
#include "dataset/families.h"

using namespace tpuperf;

int main() {
  const sim::TpuSimulator tpu(sim::TpuTarget::V2());
  const analytical::AnalyticalModel analytical(tpu.target());

  // Train on a handful of programs spanning conv and dense families.
  std::vector<ir::Program> corpus;
  for (int v = 0; v < 3; ++v) corpus.push_back(data::BuildProgram("ResNetV1", v));
  corpus.push_back(data::BuildProgram("InceptionLike", 0));
  corpus.push_back(data::BuildProgram("RNNLM", 0));
  data::DatasetOptions options;
  options.max_tile_configs_per_kernel = 24;
  const auto dataset = data::BuildTileDataset(corpus, tpu, options);
  std::printf("training dataset: %zu kernels, %zu samples\n",
              dataset.kernels.size(), dataset.TotalSamples());

  core::ModelConfig config = core::ModelConfig::TileTaskDefault();
  config.train_steps = 1500;
  core::LearnedCostModel model(config);
  core::PreparedCache cache(model);
  const std::vector<int> train_ids = {0, 1, 2, 3, 4};
  const auto stats = core::TrainTileTask(model, dataset, train_ids, cache);
  std::printf("model trained in %.1fs (%zu parameters)\n\n",
              stats.wall_seconds, model.parameter_scalars());

  // Tune an unseen ResNet variant.
  const ir::Program target = data::BuildProgram("ResNetV1", 7);
  tune::TileSizeAutotuner tuner(tpu, analytical, /*max_candidates=*/128);
  tune::LearnedEvaluator learned(model, cache);

  const auto exhaustive =
      tuner.Tune(target, tune::TileTuneMode::kExhaustive, nullptr);
  const auto top1 = tuner.Tune(target, tune::TileTuneMode::kModelOnly, &learned);
  const auto top10 = tuner.Tune(target, tune::TileTuneMode::kTopK, &learned, 10);

  std::printf("tuning %s (%d tiled kernels)\n", target.name.c_str(),
              exhaustive.kernels);
  std::printf("  %-28s %8s %14s\n", "mode", "speedup", "hardware-sec");
  std::printf("  %-28s %7.3fx %14.0f\n", "exhaustive search",
              exhaustive.Speedup(), exhaustive.hardware_seconds);
  std::printf("  %-28s %7.3fx %14s\n", "learned model in compiler",
              top1.Speedup(), "0 (model only)");
  std::printf("  %-28s %7.3fx %14.0f\n", "learned top-10 + hardware",
              top10.Speedup(), top10.hardware_seconds);
  std::printf(
      "\nThe top-10 mode recovers most of the exhaustive gain at a small "
      "fraction of the\nhardware cost — the paper's §7.2 result.\n");
  return 0;
}
