// End-to-end training workflow: generate a corpus slice, build the tile-size
// dataset (cached in the on-disk store when TPUPERF_DATASET_DIR is set —
// rerun the example to see the warm path skip generation and featurization
// entirely), train the learned cost model, evaluate it against the
// analytical baseline, and persist the trained model to disk for later use
// (the §7.1 "retrain or fine-tune with more data" deployment story).
//
//   $ ./build/examples/train_and_save [output.model]
//   $ TPUPERF_DATASET_DIR=/tmp/tpuperf_cache ./build/examples/train_and_save
#include <cstdio>
#include <cstdlib>

#include "core/evaluation.h"
#include "dataset/families.h"
#include "dataset/store.h"
#include "features/featurizer.h"

using namespace tpuperf;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/tpuperf_tile.model";

  const sim::TpuSimulator tpu(sim::TpuTarget::V2());
  const analytical::AnalyticalModel analytical(tpu.target());

  // A mixed corpus: train on variant 0-1 of each family, test on variant 2.
  std::vector<ir::Program> corpus;
  std::vector<int> train_ids, test_ids;
  for (const char* family :
       {"ResNetV1", "NMT", "RankingLike", "Char2FeatsLike"}) {
    for (int v = 0; v < 3; ++v) {
      if (v < 2) train_ids.push_back(static_cast<int>(corpus.size()));
      else test_ids.push_back(static_cast<int>(corpus.size()));
      corpus.push_back(data::BuildProgram(family, v));
    }
  }
  data::DatasetOptions options;
  options.max_tile_configs_per_kernel = 24;
  const char* cache_env = std::getenv("TPUPERF_DATASET_DIR");
  const std::string cache_dir = cache_env == nullptr ? "" : cache_env;
  std::shared_ptr<data::StoredFeatures> features;
  data::StoreLoadStats store_stats;
  const auto dataset = data::LoadOrBuildTileDataset(
      cache_dir, corpus, tpu, options, &features, &store_stats);
  if (!cache_dir.empty()) {
    std::printf("dataset store: %s %s in %.3fs\n",
                store_stats.cache_hit ? "loaded" : "built and wrote",
                store_stats.path.c_str(), store_stats.seconds);
    // Serve the cached featurizations to the trainer's PreparedCache: on a
    // warm store the whole run below never calls feat::FeaturizeKernel.
    if (features != nullptr) feat::SetGlobalKernelFeatureSource(features.get());
  }
  std::printf("dataset: %zu kernels, %zu samples (train %zu / test %zu "
              "programs)\n",
              dataset.kernels.size(), dataset.TotalSamples(),
              train_ids.size(), test_ids.size());

  core::ModelConfig config = core::ModelConfig::TileTaskDefault();
  config.train_steps = 2000;
  core::LearnedCostModel model(config);
  core::PreparedCache cache(model);
  const auto stats = core::TrainTileTask(model, dataset, train_ids, cache);
  std::printf("trained %zu-parameter model in %.1fs (loss %.3f -> %.3f)\n",
              model.parameter_scalars(), stats.wall_seconds, stats.first_loss,
              stats.final_loss);

  const auto learned = core::EvaluateTileTask(
      dataset, test_ids, corpus, core::MakeLearnedTileScorer(model, cache));
  const auto baseline = core::EvaluateTileTask(
      dataset, test_ids, corpus, core::MakeAnalyticalTileScorer(analytical));
  std::printf("\n%-22s %10s %10s\n", "test program", "learned", "analytical");
  for (size_t i = 0; i < learned.size(); ++i) {
    std::printf("%-22s %9.2f%% %9.2f%%  (Tile-Size APE, lower is better)\n",
                learned[i].application.c_str(), learned[i].ape,
                baseline[i].ape);
  }

  // Persist and reload; predictions must survive the round trip. The
  // reload check also goes through a PreparedCache so a warm dataset store
  // serves its featurization too.
  model.SaveToFile(path);
  core::LearnedCostModel reloaded(config);
  reloaded.LoadFromFile(path);
  core::PreparedCache reloaded_cache(reloaded);
  const auto& kdata = dataset.kernels.front();
  const core::PreparedKernel& pk =
      reloaded_cache.Get(kdata.record.kernel.graph, kdata.record.fingerprint);
  const double score = reloaded.PredictScore(pk, &kdata.configs.front());
  std::printf("\nmodel saved to %s and reloaded (sample prediction %.4f)\n",
              path.c_str(), score);
  return 0;
}
