// End-to-end training workflow: generate a corpus slice, build the tile-size
// dataset, train the learned cost model, evaluate it against the analytical
// baseline, and persist the trained model to disk for later use (the §7.1
// "retrain or fine-tune with more data" deployment story).
//
//   $ ./build/examples/train_and_save [output.model]
#include <cstdio>

#include "core/evaluation.h"
#include "dataset/families.h"

using namespace tpuperf;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/tpuperf_tile.model";

  const sim::TpuSimulator tpu(sim::TpuTarget::V2());
  const analytical::AnalyticalModel analytical(tpu.target());

  // A mixed corpus: train on variant 0-1 of each family, test on variant 2.
  std::vector<ir::Program> corpus;
  std::vector<int> train_ids, test_ids;
  for (const char* family :
       {"ResNetV1", "NMT", "RankingLike", "Char2FeatsLike"}) {
    for (int v = 0; v < 3; ++v) {
      if (v < 2) train_ids.push_back(static_cast<int>(corpus.size()));
      else test_ids.push_back(static_cast<int>(corpus.size()));
      corpus.push_back(data::BuildProgram(family, v));
    }
  }
  data::DatasetOptions options;
  options.max_tile_configs_per_kernel = 24;
  const auto dataset = data::BuildTileDataset(corpus, tpu, options);
  std::printf("dataset: %zu kernels, %zu samples (train %zu / test %zu "
              "programs)\n",
              dataset.kernels.size(), dataset.TotalSamples(),
              train_ids.size(), test_ids.size());

  core::ModelConfig config = core::ModelConfig::TileTaskDefault();
  config.train_steps = 2000;
  core::LearnedCostModel model(config);
  core::PreparedCache cache(model);
  const auto stats = core::TrainTileTask(model, dataset, train_ids, cache);
  std::printf("trained %zu-parameter model in %.1fs (loss %.3f -> %.3f)\n",
              model.parameter_scalars(), stats.wall_seconds, stats.first_loss,
              stats.final_loss);

  const auto learned = core::EvaluateTileTask(
      dataset, test_ids, corpus, core::MakeLearnedTileScorer(model, cache));
  const auto baseline = core::EvaluateTileTask(
      dataset, test_ids, corpus, core::MakeAnalyticalTileScorer(analytical));
  std::printf("\n%-22s %10s %10s\n", "test program", "learned", "analytical");
  for (size_t i = 0; i < learned.size(); ++i) {
    std::printf("%-22s %9.2f%% %9.2f%%  (Tile-Size APE, lower is better)\n",
                learned[i].application.c_str(), learned[i].ape,
                baseline[i].ape);
  }

  // Persist and reload; predictions must survive the round trip.
  model.SaveToFile(path);
  core::LearnedCostModel reloaded(config);
  reloaded.LoadFromFile(path);
  const auto& kdata = dataset.kernels.front();
  const core::PreparedKernel pk =
      reloaded.Prepare(kdata.record.kernel.graph);
  const double score = reloaded.PredictScore(pk, &kdata.configs.front());
  std::printf("\nmodel saved to %s and reloaded (sample prediction %.4f)\n",
              path.c_str(), score);
  return 0;
}
