// Train -> snapshot -> serve: the deployment round trip for the serving
// engine. A small tile-size model is trained in-process, persisted as ONE
// model-snapshot file (trained parameters + fitted feature scalers +
// ModelConfig, serve::SaveModelSnapshot), and a serve::PredictionService is
// then constructed from nothing but that file — the way a production
// autotuner host would come up. Concurrent clients fire predictions at the
// service and every served score is checked bit-identical against the
// in-memory model it was snapshotted from.
//
//   $ ./build/serve_demo [snapshot.tpms]
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/trainer.h"
#include "dataset/datasets.h"
#include "dataset/families.h"
#include "serve/prediction_service.h"
#include "serve/snapshot.h"
#include "sim/simulator.h"

using namespace tpuperf;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/tpuperf_serve_demo.tpms";

  // ---- Train a small model -------------------------------------------------
  const sim::TpuSimulator tpu(sim::TpuTarget::V2());
  std::vector<ir::Program> corpus;
  std::vector<int> train_ids;
  for (const char* family : {"ResNetV1", "NMT"}) {
    for (int v = 0; v < 2; ++v) {
      train_ids.push_back(static_cast<int>(corpus.size()));
      corpus.push_back(data::BuildProgram(family, v));
    }
  }
  data::DatasetOptions options;
  options.max_tile_configs_per_kernel = 8;
  const auto dataset = data::BuildTileDataset(corpus, tpu, options);
  std::printf("dataset: %zu kernels, %zu samples\n", dataset.kernels.size(),
              dataset.TotalSamples());

  core::ModelConfig config = core::ModelConfig::TileTaskDefault();
  config.hidden_dim = 32;
  config.opcode_embedding_dim = 16;
  config.train_steps = 200;
  auto model = std::make_unique<core::LearnedCostModel>(config);
  core::PreparedCache train_cache(*model);
  const auto stats =
      core::TrainTileTask(*model, dataset, train_ids, train_cache);
  std::printf("trained %zu-parameter model in %.1fs (loss %.3f -> %.3f)\n",
              model->parameter_scalars(), stats.wall_seconds, stats.first_loss,
              stats.final_loss);

  // ---- Snapshot ------------------------------------------------------------
  serve::SaveModelSnapshot(path, *model);
  std::printf("snapshot written to %s\n", path.c_str());

  // ---- Serve from the snapshot file ---------------------------------------
  serve::ServiceConfig service_config = serve::ServiceConfig::FromEnv();
  serve::PredictionService service(path, service_config);
  std::printf("service up: max_batch=%d deadline_us=%ld\n",
              service.config().max_batch, service.config().deadline_us);

  // Concurrent clients; every served score must equal the in-memory model's
  // PredictScore exactly (the service's batching contract). The tile task
  // scores (kernel, tile) pairs, so each query carries one of the kernel's
  // dataset tile configs.
  std::vector<const ir::Graph*> kernels;
  std::vector<ir::TileConfig> tiles;
  for (const auto& k : dataset.kernels) {
    if (k.configs.empty()) continue;
    kernels.push_back(&k.record.kernel.graph);
    tiles.push_back(k.configs.front());
    if (kernels.size() >= 32) break;
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = static_cast<size_t>(c); i < kernels.size(); i += 4) {
        const double served = service.Predict(*kernels[i], &tiles[i]);
        const double direct =
            model->PredictScore(model->Prepare(*kernels[i]), &tiles[i]);
        if (served != direct) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  service.Shutdown();

  const serve::ServiceStats final_stats = service.stats();
  std::printf("served %llu requests in %llu batches (mean batch %.1f)\n",
              static_cast<unsigned long long>(final_stats.completed),
              static_cast<unsigned long long>(final_stats.batches),
              final_stats.mean_batch_size());
  if (mismatches.load() != 0) {
    std::printf("FAILED: %d served scores diverged from PredictScore\n",
                mismatches.load());
    return 1;
  }
  std::printf("all served scores bit-identical to the snapshotted model\n");
  return 0;
}
