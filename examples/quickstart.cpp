// Quickstart: build a tensor computation graph, run it on the simulated
// TPU, compare the analytical model's estimate, and get a prediction from a
// (tiny, freshly trained) learned cost model.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "analytical/analytical_model.h"
#include "core/evaluation.h"
#include "dataset/families.h"
#include "ir/builder.h"
#include "sim/simulator.h"

using namespace tpuperf;

int main() {
  // ---- 1. Build a kernel: dense layer with bias + relu --------------------
  ir::GraphBuilder b;
  const ir::NodeId x = b.Parameter(ir::Shape({128, 256}));
  const ir::NodeId y = b.Dense(x, 512);
  b.MarkOutput(y);
  const ir::Graph kernel = std::move(b).Build();
  std::printf("Kernel (%d nodes):\n%s\n", kernel.num_nodes(),
              kernel.ToString().c_str());

  // ---- 2. Enumerate tile sizes and measure on the simulated TPU v2 --------
  const sim::TpuSimulator tpu(sim::TpuTarget::V2());
  const auto tiles = tpu.EnumerateTiles(kernel, /*max_configs=*/64);
  std::printf("%zu valid tile configurations; a few measurements:\n",
              tiles.size());
  for (size_t i = 0; i < tiles.size(); i += tiles.size() / 4) {
    std::printf("  tile %-12s -> %8.2f us\n", tiles[i].ToString().c_str(),
                tpu.Measure(kernel, tiles[i]) * 1e6);
  }

  // ---- 3. The analytical baseline picks its best tile ---------------------
  const analytical::AnalyticalModel analytical(tpu.target());
  const ir::TileConfig analytical_best = analytical.SelectBestTile(kernel, tiles);
  std::printf("analytical model picks %s -> %.2f us (true)\n",
              analytical_best.ToString().c_str(),
              tpu.Measure(kernel, analytical_best) * 1e6);

  // ---- 4. Train a small learned cost model and let it pick ----------------
  const auto corpus = std::vector<ir::Program>{
      data::BuildProgram("RankingLike", 0), data::BuildProgram("RNNLM", 0)};
  data::DatasetOptions options;
  options.max_tile_configs_per_kernel = 16;
  const auto dataset = data::BuildTileDataset(corpus, tpu, options);

  core::ModelConfig config = core::ModelConfig::TileTaskDefault();
  config.hidden_dim = 24;
  config.train_steps = 600;
  core::LearnedCostModel model(config);
  core::PreparedCache cache(model);
  const std::vector<int> train_ids = {0, 1};
  const auto stats = core::TrainTileTask(model, dataset, train_ids, cache);
  std::printf("trained learned model: %s (loss %.3f -> %.3f in %.1fs)\n",
              config.Summary().c_str(), stats.first_loss, stats.final_loss,
              stats.wall_seconds);

  const core::PreparedKernel prepared = model.Prepare(kernel);
  const ir::TileConfig* learned_best = &tiles.front();
  double best_score = model.PredictScore(prepared, learned_best);
  for (const auto& tile : tiles) {
    const double score = model.PredictScore(prepared, &tile);
    if (score < best_score) {
      best_score = score;
      learned_best = &tile;
    }
  }
  double true_best = tpu.Measure(kernel, tiles.front());
  for (const auto& tile : tiles) {
    true_best = std::min(true_best, tpu.Measure(kernel, tile));
  }
  std::printf("learned model picks    %s -> %.2f us (true); true best %.2f us\n",
              learned_best->ToString().c_str(),
              tpu.Measure(kernel, *learned_best) * 1e6, true_best * 1e6);
  return 0;
}
